"""Client for the CacheMind JSON-lines server (``repro ask --remote``).

One persistent TCP connection per client; requests are one JSON object per
line and responses come back in order, so a client can pipeline.  The
client rebuilds :class:`~repro.core.answer.AskResponse` objects from the
wire, so remote callers consume exactly the in-process response type.

Resilience: the protocol is strictly request/response (one line each way),
so an idempotent request that dies mid-flight — connection reset, server
restart, an ``overloaded`` shed — is safe to resend on a fresh connection.
:meth:`RemoteClient.request` does exactly that: capped exponential backoff
with seeded jitter between attempts, automatic reconnect, and an optional
per-request wall-clock deadline that bounds the whole retry loop and rides
to the server as ``deadline_ms`` so both sides give up together.  A server
restart between or during requests is therefore invisible to callers as
long as it comes back within the retry budget.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.answer import AskResponse
from repro.core.experiment import ExperimentResult, ExperimentSpec
from repro.faults import fault_point


class RemoteError(RuntimeError):
    """The server answered ``{"ok": false, ...}`` for a request.

    ``kind`` is the server's structured error class (``bad_request``,
    ``overloaded``, ``shutting_down``, ``deadline``, ``internal`` — or
    ``"error"`` for pre-``kind`` servers).
    """

    def __init__(self, message: str, kind: str = "error"):
        super().__init__(message)
        self.kind = kind


class ServerOverloadedError(RemoteError):
    """The server shed this request at admission (``kind="overloaded"``).

    Retryable by definition: the request never started executing."""

    def __init__(self, message: str, kind: str = "overloaded"):
        super().__init__(message, kind)


class ServerShuttingDownError(RemoteError):
    """The server is draining and refused the request
    (``kind="shutting_down"``).  Safe to retry against a restarted server."""

    def __init__(self, message: str, kind: str = "shutting_down"):
        super().__init__(message, kind)


class DeadlineExceeded(RemoteError):
    """A request's wall-clock deadline expired (client- or server-side)."""

    def __init__(self, message: str, kind: str = "deadline"):
        super().__init__(message, kind)


#: Server error kinds that are safe to retry for idempotent requests.
RETRYABLE_KINDS = ("overloaded", "shutting_down")

_KIND_TO_ERROR = {
    "overloaded": ServerOverloadedError,
    "shutting_down": ServerShuttingDownError,
    "deadline": DeadlineExceeded,
}


def parse_address(address: str,
                  default_port: int = 9178) -> Tuple[str, int]:
    """Split ``"host:port"`` (port optional) into ``(host, port)``."""
    if not address:
        raise ValueError("empty server address")
    host, _, port_text = address.rpartition(":")
    if not host:
        return address, default_port
    try:
        return host, int(port_text)
    except ValueError:
        raise ValueError(f"malformed server address {address!r}; "
                         f"expected HOST or HOST:PORT") from None


class RemoteClient:
    """Talk to a :class:`~repro.serve.server.CacheMindServer`.

        >>> with RemoteClient("127.0.0.1", 9178) as client:
        ...     response = client.ask("What is the miss rate of lru on astar?")
        ...     print(response.answer)

    The connection opens lazily on the first request and is reused; use the
    context-manager form (or :meth:`close`) to release it.

    ``retries`` bounds resends of idempotent requests after transport
    failures or retryable server errors; ``backoff_base``/``backoff_cap``
    shape the exponential backoff between attempts (jittered by an RNG
    seeded with ``retry_seed``, so chaos tests are reproducible).
    ``deadline`` (seconds) is a default per-request wall-clock budget;
    individual calls may override it.
    """

    def __init__(self, host: str, port: Optional[int] = None,
                 timeout: float = 60.0, retries: int = 3,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 deadline: Optional[float] = None,
                 retry_seed: Optional[int] = None):
        if port is None:
            host, port = parse_address(host)
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.deadline = deadline
        self.retries_used = 0
        self._rng = random.Random(retry_seed)
        self._sock: Optional[socket.socket] = None
        self._reader = None

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
            self._reader = self._sock.makefile("rb")

    def close(self) -> None:
        """Close the connection (idempotent); the next request reconnects."""
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def request(self, payload: Dict[str, Any], idempotent: bool = True,
                deadline: Optional[float] = None) -> Any:
        """Send one protocol request; returns the ``result`` payload.

        Idempotent requests are retried (with reconnect + jittered backoff)
        after transport failures and retryable server errors, up to
        ``self.retries`` resends or the request deadline, whichever comes
        first.  Raises :class:`RemoteError` (or a subclass carrying the
        structured ``kind``) on a final ``ok: false`` reply, the underlying
        ``OSError``/``ConnectionError`` when the transport stays broken, and
        :class:`DeadlineExceeded` when the deadline expires mid-retry.
        """
        budget = self.deadline if deadline is None else deadline
        deadline_at = (None if budget is None
                       else time.monotonic() + budget)
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.retries_used += 1
                delay = min(self.backoff_cap,
                            self.backoff_base * (2 ** (attempt - 1)))
                delay *= 0.5 + 0.5 * self._rng.random()
                if deadline_at is not None:
                    remaining = deadline_at - time.monotonic()
                    if remaining <= delay:
                        raise DeadlineExceeded(
                            f"request deadline ({budget:.3f}s) expired after "
                            f"{attempt} attempt(s); last error: "
                            f"{last_error!r}") from last_error
                time.sleep(delay)
            try:
                return self._attempt(payload, deadline_at, budget)
            except RemoteError as error:
                retryable = (idempotent and error.kind in RETRYABLE_KINDS
                             and attempt < self.retries)
                if not retryable:
                    raise
                if error.kind == "shutting_down":
                    # The connection belongs to a dying server; dial fresh
                    # so the retry can reach its restarted replacement.
                    self.close()
                last_error = error
            except (OSError, ValueError) as error:
                # OSError covers ConnectionError/TimeoutError/socket resets;
                # ValueError is a non-protocol reply (connection already
                # dropped by _attempt, so a resend starts clean).
                self.close()
                if not idempotent or attempt >= self.retries:
                    raise
                last_error = error
        raise RemoteError(f"request failed after {self.retries + 1} "
                          f"attempts: {last_error!r}")  # pragma: no cover

    def _attempt(self, payload: Dict[str, Any],
                 deadline_at: Optional[float],
                 budget: Optional[float]) -> Any:
        self._connect()
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceeded(
                    f"request deadline ({budget:.3f}s) expired before send")
            payload = dict(payload)
            payload.setdefault("deadline_ms", max(1, int(remaining * 1000)))
            self._sock.settimeout(min(self.timeout, remaining))
        try:
            fault_point("socket.send")
            self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
            fault_point("socket.recv")
            line = self._reader.readline()
        except OSError:
            self.close()
            raise
        finally:
            if deadline_at is not None and self._sock is not None:
                self._sock.settimeout(self.timeout)
        if not line:
            self.close()
            raise ConnectionError(
                f"server at {self.host}:{self.port} closed the connection")
        try:
            reply = json.loads(line)
        except ValueError:
            # A non-protocol peer: drop the connection rather than leave
            # the rest of its reply buffered to desynchronize later calls.
            self.close()
            raise
        if not reply.get("ok"):
            kind = reply.get("kind", "error")
            message = reply.get("error", "unknown server error")
            raise _KIND_TO_ERROR.get(kind, RemoteError)(message, kind)
        return reply.get("result")

    # ------------------------------------------------------------------
    # high-level API (mirrors CacheMindService)
    # ------------------------------------------------------------------
    def ask(self, question: str, retriever: Optional[str] = None,
            request_id: str = "",
            deadline: Optional[float] = None) -> AskResponse:
        """Ask one question; returns the rebuilt :class:`AskResponse`."""
        result = self.request({"op": "ask", "question": question,
                               "retriever": retriever, "id": request_id},
                              deadline=deadline)
        return AskResponse.from_dict(result)

    def ask_batch(self, questions: Sequence[str],
                  retriever: Optional[str] = None,
                  deadline: Optional[float] = None) -> List[AskResponse]:
        """Ask a batch in one round trip (server-side job dedup applies)."""
        result = self.request({"op": "batch", "questions": list(questions),
                               "retriever": retriever}, deadline=deadline)
        return [AskResponse.from_dict(item) for item in result]

    def experiment(self, spec: Union[ExperimentSpec, Dict[str, Any]],
                   deadline: Optional[float] = None) -> ExperimentResult:
        """Run a declarative sweep grid server-side (one round trip).

        ``spec`` is an :class:`ExperimentSpec` or its ``to_dict`` payload;
        the rebuilt :class:`ExperimentResult` is cell-for-cell identical to
        running the same spec in-process against the server's session.
        """
        payload = spec.to_dict() if isinstance(spec, ExperimentSpec) else dict(spec)
        result = self.request({"op": "experiment", "spec": payload},
                              deadline=deadline)
        return ExperimentResult.from_dict(result)

    def query(self, fingerprint: str,
              query: Union[Dict[str, Any], "object"],
              backend: str = "stdlib",
              deadline: Optional[float] = None):
        """Run a declarative analytics query against a store-backed
        experiment result on the server, without shipping the whole table.

        ``fingerprint`` may be a unique prefix of the stored experiment's
        fingerprint; ``query`` is a :class:`repro.analytics.Query` (or its
        ``to_dict`` wire form) over the experiment's ``cells`` table;
        ``backend`` picks the server-side analytics backend (``stdlib`` or
        ``sqlite``).  Returns the result :class:`~repro.tracedb.table.Table`,
        byte-identical to running the same query in-process on the server's
        store.
        """
        from repro.analytics import as_query
        from repro.tracedb.table import Table

        payload = as_query(query).to_dict()
        result = self.request({"op": "query", "fingerprint": fingerprint,
                               "query": payload, "backend": backend},
                              deadline=deadline)
        return Table.from_columns(result["columns"])

    def stats(self) -> Dict[str, Any]:
        """The server's serving-telemetry snapshot."""
        return self.request({"op": "stats"})

    def health(self) -> Dict[str, Any]:
        """The server's degradation snapshot (always answered, even while
        the server is overloaded or draining)."""
        return self.request({"op": "health"})

    def ping(self) -> bool:
        """Whether the server answers the protocol ping."""
        try:
            result = self.request({"op": "ping"}, idempotent=False)
        except (OSError, ValueError, RemoteError):
            return False
        return bool(result and result.get("pong"))

    # ------------------------------------------------------------------
    @staticmethod
    def wait_ready(host: str, port: Optional[int] = None,
                   timeout: float = 30.0, interval: float = 0.1) -> bool:
        """Poll until a server accepts and answers ping (startup helper).

        Each attempt uses a fresh connection, so this works while the
        server is still binding, with exponential backoff between probes
        (starting at ``interval``, capped at 2s).  Returns ``True`` once
        ready; raises ``ConnectionError`` carrying the last probe failure
        on timeout.
        """
        if port is None:
            host, port = parse_address(host)
        deadline = time.monotonic() + timeout
        delay = max(0.01, interval)
        last_error: Optional[BaseException] = None
        while True:
            try:
                with RemoteClient(host, port, timeout=delay + 1.0,
                                  retries=0) as probe:
                    result = probe.request({"op": "ping"}, idempotent=False)
                    if result and result.get("pong"):
                        return True
                    last_error = RemoteError(
                        f"peer at {host}:{port} answered but is not a "
                        f"CacheMind server")
            except (OSError, ValueError, RemoteError) as error:
                last_error = error
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ConnectionError(
                    f"no server became ready at {host}:{port} within "
                    f"{timeout:.1f}s (last error: {last_error!r})"
                ) from last_error
            time.sleep(min(delay, remaining))
            delay = min(delay * 2, 2.0)
