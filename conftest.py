"""Pytest bootstrap: make the in-tree package importable without installing.

``pip install -e .`` is the normal path, but tests should also run from a
fresh checkout, so the ``src`` layout directory is appended to ``sys.path``
when the installed package is absent.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - only taken on uninstalled checkouts
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)
