"""The analytics engine: Query objects, stdlib/sqlite backends, DSL, wiring.

The flagship acceptance test is the randomized differential suite: every
query in the matrix — NULLs, mixed types, empty groups, top-k ties, joins —
must return byte-identical tables from the stdlib executor and the sqlite
spill backend.
"""

import json
import random

import pytest

from repro.analytics import (
    AGGREGATE_FUNCS,
    Aggregate,
    Filter,
    Join,
    OrderBy,
    Query,
    QuerySyntaxError,
    SqliteBackend,
    StdlibBackend,
    aggregate_values,
    as_query,
    available_backends,
    canonical_value,
    create_backend,
    parse_query,
    run_query,
)
from repro.errors import UnknownNameError
from repro.tracedb.table import Column, Table


def make_table(**columns) -> Table:
    return Table.from_columns({name: list(values)
                               for name, values in columns.items()})


@pytest.fixture(params=["stdlib", "sqlite"])
def backend(request):
    with create_backend(request.param) as store:
        yield store


# ----------------------------------------------------------------------
# Query objects: validation, fluent helpers, wire forms
# ----------------------------------------------------------------------
def test_query_validation_rejects_bad_shapes():
    with pytest.raises(ValueError):
        Query(table="t", group_by=("a",))  # group_by without aggregates
    with pytest.raises(ValueError):
        Query(table="t", select=("a",), aggregates=(Aggregate("count"),))
    with pytest.raises(ValueError):
        Query(table="t", limit=-1)
    with pytest.raises(ValueError):
        Query(table="t", limit=2.5)
    with pytest.raises(ValueError):
        Query(table="t", select=("a", "a"))  # duplicate output column
    with pytest.raises(ValueError):
        Query(table="t", group_by=("a",),
              aggregates=(Aggregate("count", alias="a"),))


def test_filter_validation():
    with pytest.raises(ValueError):
        Filter("c", "like", "x")  # unknown op
    with pytest.raises(ValueError):
        Filter("c", "eq", float("nan"))  # NaN literal never matches anything
    with pytest.raises(ValueError):
        Filter("c", "lt", float("inf"))
    with pytest.raises(ValueError):
        Filter("c", "lt", None)
    with pytest.raises(ValueError):
        Filter("c", "ge", True)  # bool literals ambiguous under ordering
    with pytest.raises(ValueError):
        Filter("c", "in", 3)  # in/not_in require a sequence
    assert Filter("c", "in", [1, 2]).value == (1, 2)
    assert Filter("c", "is_null").value is None


def test_aggregate_validation_and_output_names():
    with pytest.raises(ValueError):
        Aggregate("variance")
    with pytest.raises(ValueError):
        Aggregate("sum")  # needs a column
    with pytest.raises(ValueError):
        Aggregate("count", column="c")  # count is rows-in-group, no column
    with pytest.raises(ValueError):
        Aggregate("percentile", column="c")  # needs q
    with pytest.raises(ValueError):
        Aggregate("percentile", column="c", q=1.5)
    assert Aggregate("count").output_name == "count"
    assert Aggregate("mean", column="x").output_name == "mean_x"
    assert Aggregate("percentile", column="x", q=0.95).output_name == "p0.95_x"
    assert Aggregate("sum", column="x", alias="total").output_name == "total"
    assert "percentile" in AGGREGATE_FUNCS


def test_fluent_helpers_build_new_queries():
    base = Query(table="t")
    query = base.where("a", "gt", 3).where("b", "is_null").order("a", descending=True).head(5)
    assert base.filters == () and base.limit is None  # frozen original
    assert query.filters == (Filter("a", "gt", 3), Filter("b", "is_null"))
    assert query.order_by == (OrderBy("a", True),)
    assert query.limit == 5


def test_output_columns():
    assert Query(table="t").output_columns() is None
    assert Query(table="t", select=("b", "a")).output_columns() == ("b", "a")
    grouped = Query(table="t", group_by=("g",),
                    aggregates=(Aggregate("count"), Aggregate("mean", column="x")))
    assert grouped.output_columns() == ("g", "count", "mean_x")


def test_wire_round_trip_is_lossless_and_json_safe():
    query = Query(
        table="cells",
        filters=(Filter("a", "gt", 1), Filter("b", "in", ["x", "y"]),
                 Filter("c", "is_null")),
        group_by=("g", "h"),
        aggregates=(Aggregate("count", alias="n"),
                    Aggregate("percentile", column="v", q=0.9)),
        order_by=(OrderBy("n", True), OrderBy("g")),
        limit=10,
    )
    payload = json.loads(json.dumps(query.to_dict()))
    assert Query.from_dict(payload) == query

    joined = Query(table="l", join=Join("r", on=(("k", "k2"),),
                                        select=(("v", "v_r"),)))
    assert Query.from_dict(json.loads(json.dumps(joined.to_dict()))) == joined

    plain = Query(table="t")
    assert plain.to_dict() == {"table": "t"}  # sparse wire form


def test_as_query_coercion():
    query = Query(table="t", limit=3)
    assert as_query(query) is query
    assert as_query(query.to_dict()) == query
    with pytest.raises(TypeError):
        as_query("select *")


# ----------------------------------------------------------------------
# Column.median / percentile / std (satellite 1)
# ----------------------------------------------------------------------
def test_column_percentile_linear_interpolation():
    column = Column("x", [10.0, 20.0, 30.0, 40.0])
    assert column.percentile(0.0) == 10.0
    assert column.percentile(1.0) == 40.0
    assert column.percentile(0.5) == 25.0  # interpolates between 20 and 30
    assert column.percentile(0.25) == pytest.approx(17.5)
    with pytest.raises(ValueError):
        column.percentile(1.5)
    assert Column("x", [None, "text"]).percentile(0.5) is None


def test_column_median_skips_nulls_and_non_numerics():
    assert Column("x", [3, None, 1, "junk", 2]).median() == 2
    assert Column("x", [4, 1, 2, 3]).median() == 2.5
    assert Column("x", []).median() is None


def test_column_std_is_population_std():
    column = Column("x", [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert column.std() == pytest.approx(2.0)  # ddof=0, not 2.138 (ddof=1)
    assert Column("x", [5.0]).std() == 0.0


def test_table_aggregate_median():
    table = make_table(g=["a", "a", "b"], v=[1, 3, 10])
    result = table.aggregate("g", {"v_median": ("v", "median")})
    assert result["v_median"].values == [2, 10]


# ----------------------------------------------------------------------
# executor semantics (parametrized over both backends)
# ----------------------------------------------------------------------
def test_filters_null_semantics(backend):
    backend.register_table("t", make_table(a=[1, 2, None, 3], b=["x", None, "y", "x"]))
    run = lambda q: backend.execute(q)["a"].values
    assert run(Query("t").where("a", "ne", 2)) == [1, 3]  # NULL excluded
    assert run(Query("t").where("a", "is_null")) == [None]
    assert run(Query("t").where("a", "not_null")) == [1, 2, 3]
    assert run(Query("t").where("a", "in", [1, 3, 99])) == [1, 3]
    assert run(Query("t").where("a", "not_in", [1])) == [2, 3]  # NULL excluded
    assert run(Query("t").where("a", "in", [])) == []
    assert run(Query("t").where("a", "not_in", [])) == [1, 2, 3]
    assert run(Query("t").where("b", "eq", "x")) == [1, 3]


def test_ordered_comparisons_are_type_guarded(backend):
    backend.register_table("t", make_table(v=[5, "10", 2.5, None, "abc", 7]))
    result = backend.execute(Query("t").where("v", "gt", 3))
    assert result["v"].values == [5, 7]  # strings never compare to numbers
    result = backend.execute(Query("t").where("v", "ge", "abc"))
    assert result["v"].values == ["abc"]  # and numbers never compare to strings


def test_ordering_nulls_last_and_numbers_before_strings(backend):
    backend.register_table("t", make_table(v=[None, "b", 2, "a", 1, None]))
    ascending = backend.execute(Query("t").order("v"))
    assert ascending["v"].values == [1, 2, "a", "b", None, None]
    descending = backend.execute(Query("t").order("v", descending=True))
    assert descending["v"].values == ["b", "a", 2, 1, None, None]


def test_ordering_ties_preserve_row_order(backend):
    backend.register_table("t", make_table(k=[1, 1, 0, 1, 0], tag=list("abcde")))
    result = backend.execute(Query("t").order("k", descending=True).head(3))
    assert result["tag"].values == ["a", "b", "d"]  # stable within the tie


def test_aggregates_without_group_by_always_one_row(backend):
    backend.register_table("t", make_table(v=[1.0, 2.0, 3.0]))
    query = Query("t", aggregates=(
        Aggregate("count", alias="n"), Aggregate("sum", column="v"),
        Aggregate("mean", column="v"), Aggregate("min", column="v"),
        Aggregate("max", column="v"), Aggregate("median", column="v"),
        Aggregate("std", column="v"),
        Aggregate("percentile", column="v", q=0.5, alias="p50")))
    result = backend.execute(query)
    assert len(result) == 1
    assert result["n"].values == [3]
    assert result["sum_v"].values == [6.0]
    assert result["median_v"].values == [2.0]
    assert result["p50"].values == [2.0]

    empty = backend.execute(query.where("v", "gt", 100))
    assert len(empty) == 1  # SQL semantics: aggregates never vanish
    assert empty["n"].values == [0]
    assert empty["sum_v"].values == [0]  # empty sum is 0
    assert empty["mean_v"].values == [None]  # but empty mean is NULL
    assert empty["min_v"].values == [None]
    assert empty["p50"].values == [None]


def test_group_by_first_seen_order_and_null_groups(backend):
    backend.register_table("t", make_table(
        g=["b", None, "a", "b", None], v=[1, 2, 3, 4, 5]))
    result = backend.execute(Query(
        "t", group_by=("g",),
        aggregates=(Aggregate("count", alias="n"), Aggregate("sum", column="v"))))
    assert result["g"].values == ["b", None, "a"]  # first-seen, NULL is a group
    assert result["n"].values == [2, 2, 1]
    assert result["sum_v"].values == [5, 7, 3]


def test_count_counts_rows_not_values(backend):
    backend.register_table("t", make_table(g=["a", "a"], v=[None, None]))
    result = backend.execute(Query(
        "t", group_by=("g",), aggregates=(Aggregate("count", alias="n"),)))
    assert result["n"].values == [2]  # COUNT(*), not COUNT(v)


def test_select_projection_and_limit(backend):
    backend.register_table("t", make_table(a=[1, 2, 3], b=[4, 5, 6], c=[7, 8, 9]))
    result = backend.execute(Query("t", select=("c", "a"), limit=2))
    assert result.columns == ["c", "a"]
    assert result["c"].values == [7, 8]
    assert len(backend.execute(Query("t", limit=0))) == 0


def test_join_inner_equality(backend):
    backend.register_table("runs", make_table(
        wl=["astar", "lbm", "mcf", None], miss=[0.5, 0.3, 0.9, 0.1]))
    backend.register_table("base", make_table(
        wl=["lbm", "astar", None], miss=[0.4, 0.6, 0.2]))
    query = Query("runs", join=Join("base", on=(("wl", "wl"),)))
    result = backend.execute(query)
    # left-major order; mcf unmatched; NULL keys never match
    assert result["wl"].values == ["astar", "lbm"]
    assert result["miss"].values == [0.5, 0.3]
    assert result["base.miss"].values == [0.6, 0.4]  # collision renamed

    picked = backend.execute(Query("runs", join=Join(
        "base", on=(("wl", "wl"),), select=(("miss", "baseline"),))))
    assert picked.columns == ["wl", "miss", "baseline"]


def test_join_duplicate_right_matches_fan_out(backend):
    backend.register_table("l", make_table(k=[1, 2], v=["a", "b"]))
    backend.register_table("r", make_table(k=[1, 1, 2], w=[10, 20, 30]))
    result = backend.execute(Query("l", join=Join("r", on=(("k", "k"),))))
    assert result["v"].values == ["a", "a", "b"]
    assert result["w"].values == [10, 20, 30]


def test_unknown_names_raise(backend):
    backend.register_table("t", make_table(a=[1]))
    with pytest.raises(UnknownNameError):
        backend.execute(Query("missing"))
    with pytest.raises(UnknownNameError):
        backend.execute(Query("t").where("nope", "eq", 1))
    with pytest.raises(UnknownNameError):
        backend.execute(Query("t", select=("nope",)))
    with pytest.raises(UnknownNameError):
        backend.execute(Query("t").order("nope"))
    with pytest.raises(UnknownNameError):
        backend.execute(Query("t", join=Join("missing", on=(("a", "a"),))))


def test_store_table_management(backend):
    table = make_table(a=[1, True, None], b=[2.5, "x", -3])
    backend.register_table("t", table)
    assert backend.list_tables() == ["t"]
    assert backend.has_table("t")
    assert backend.table_columns("t") == ("a", "b")
    # round-trip through the backend canonicalises bools to ints
    loaded = backend.load_table("t")
    assert loaded["a"].values == [1, 1, None]
    assert loaded["b"].values == [2.5, "x", -3]
    backend.drop_table("t")
    assert not backend.has_table("t")
    with pytest.raises(UnknownNameError):
        backend.load_table("t")
    with pytest.raises(ValueError):
        backend.register_table("t", make_table(__row__=[1]))


def test_registry_and_run_query():
    assert available_backends() == ["sqlite", "stdlib"]
    with pytest.raises(UnknownNameError):
        create_backend("pandas")
    with pytest.raises(UnknownNameError):
        run_query(Query("t"), {"t": make_table(a=[1])}, backend="pandas")
    table = make_table(a=[3, 1, 2])
    result = run_query(Query("t").order("a"), {"t": table})
    assert result["a"].values == [1, 2, 3]
    # an explicit instance is registered into and stays open
    with StdlibBackend() as store:
        run_query(Query("t"), {"t": table}, backend=store)
        assert store.has_table("t")


def test_canonical_value_and_aggregate_values():
    assert canonical_value(True) == 1 and canonical_value(True) is not True
    assert canonical_value(float("nan")) is None
    assert canonical_value("x") == "x"
    assert aggregate_values("sum", []) == 0
    assert aggregate_values("mean", []) is None
    assert aggregate_values("percentile", [1.0, 2.0], q=0.5) == 1.5
    with pytest.raises(ValueError):
        aggregate_values("nope", [1])


# ----------------------------------------------------------------------
# sqlite backend specifics
# ----------------------------------------------------------------------
def test_sqlite_spill_rejects_unspillable_values():
    with SqliteBackend() as store:
        with pytest.raises(ValueError):
            store.register_table("t", make_table(a=[2 ** 63]))  # int64 overflow
        with pytest.raises(TypeError):
            store.register_table("t", make_table(a=[{1, 2}]))  # not JSON-able


def test_opaque_payloads_round_trip_both_backends(backend):
    # Non-scalar payload columns (the trace table's current_cache_lines)
    # survive select passthrough on either backend.
    backend.register_table("t", make_table(
        k=[1, 2, 3], lines=[[10, 20], {"a": 1}, None],
        s=["\x00json\x00not-a-payload", "plain", None]))
    result = backend.execute(Query("t").where("k", "le", 2))
    assert result["lines"].values == [[10, 20], {"a": 1}]
    assert result["s"].values == ["\x00json\x00not-a-payload", "plain"]
    assert backend.load_table("t")["lines"].values == [[10, 20], {"a": 1}, None]


def test_sqlite_temp_database_cleaned_up():
    store = SqliteBackend()
    store.register_table("t", make_table(a=[1, 2]))
    assert store.load_table("t")["a"].values == [1, 2]
    store.close()
    import os

    assert store.path is None or not os.path.exists(store.path)
    with pytest.raises(RuntimeError):
        store.register_table("u", make_table(a=[1]))


def test_sqlite_named_database_file(tmp_path):
    path = str(tmp_path / "spill.sqlite3")
    with SqliteBackend(path=path) as store:
        store.register_table("t", make_table(a=[1]))
        assert store.execute(Query("t"))["a"].values == [1]


# ----------------------------------------------------------------------
# the differential matrix: randomized stdlib-vs-sqlite identity
# ----------------------------------------------------------------------
def random_table(rng: random.Random, rows: int) -> Table:
    """A messy table: NULLs everywhere, mixed types, heavy ties.

    Group keys draw from int/str/None pools only — 1 and 1.0 are the same
    group key in both engines by design, so float keys would only blur what
    the differential test is probing.
    """
    groups = ["red", "green", "blue", 1, 2, None]
    return make_table(
        g=[rng.choice(groups) for _ in range(rows)],
        k=[rng.choice([0, 1, 2, None]) for _ in range(rows)],
        v=[rng.choice([None, rng.randint(-5, 5), rng.random() * 10,
                       "stray", True]) for _ in range(rows)],
        w=[float(rng.randint(0, 3)) for _ in range(rows)],  # heavy ties
    )


DIFFERENTIAL_QUERIES = [
    Query("t"),
    Query("t", select=("v", "g")),
    Query("t").where("v", "gt", 2).order("v", descending=True),
    Query("t").where("v", "ne", 1).where("g", "in", ["red", 1]),
    Query("t").where("v", "is_null").order("g"),
    Query("t").where("v", "not_in", [0, "stray"]),
    Query("t").order("v").order("g", descending=True).head(7),
    Query("t").order("w").head(5),  # top-k over heavy ties
    Query("t", group_by=("g",), aggregates=(
        Aggregate("count", alias="n"), Aggregate("sum", column="v"),
        Aggregate("mean", column="v"), Aggregate("std", column="w"),
        Aggregate("percentile", column="v", q=0.75, alias="p75"))),
    Query("t", group_by=("g", "k"), aggregates=(
        Aggregate("count", alias="n"), Aggregate("median", column="v"))
        ).order("n", descending=True).order("g").head(6),
    # empty groups: the filter leaves no rows at all
    Query("t", aggregates=(Aggregate("count", alias="n"),
                           Aggregate("sum", column="v"),
                           Aggregate("mean", column="v"))
          ).where("v", "gt", 10 ** 9),
    Query("t", group_by=("k",),
          aggregates=(Aggregate("max", column="v"),)
          ).where("g", "eq", "no-such-group"),
    # join on a messy key, then order the combined row set
    Query("t", join=Join("u", on=(("k", "k"),)),
          ).where("w", "ge", 1.0).order("v").head(20),
    Query("t", join=Join("u", on=(("g", "g"), ("k", "k")),
                         select=(("v", "v_right"),))).order("v_right"),
]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_differential_stdlib_vs_sqlite(seed):
    rng = random.Random(seed)
    left = random_table(rng, 60)
    right = random_table(rng, 40)
    with StdlibBackend() as stdlib, SqliteBackend() as sqlite:
        for store in (stdlib, sqlite):
            store.register_table("t", left)
            store.register_table("u", right)
        for query in DIFFERENTIAL_QUERIES:
            expected = stdlib.execute(query).to_dict()
            actual = sqlite.execute(query).to_dict()
            assert actual == expected, f"backends diverged on {query.to_dict()}"
            # and the wire form reproduces the native result exactly
            rewired = stdlib.execute(Query.from_dict(query.to_dict())).to_dict()
            assert rewired == expected


def test_differential_identity_is_type_strict():
    # `==` cannot see 1 vs 1.0, so pin the numeric types both engines must
    # produce: aggregates float all numerics (Column._numeric_values), and
    # the empty sum is the int 0 — everywhere.
    table = make_table(g=["a", "a", "b"], v=[1, 2, 10])
    query = Query("t", group_by=("g",), aggregates=(
        Aggregate("sum", column="v"), Aggregate("min", column="v")))
    empty_sum = Query("t", aggregates=(Aggregate("sum", column="v"),)
                      ).where("v", "gt", 100)
    with StdlibBackend() as stdlib, SqliteBackend() as sqlite:
        stdlib.register_table("t", table)
        sqlite.register_table("t", table)
        for store in (stdlib, sqlite):
            result = store.execute(query)
            assert result["sum_v"].values == [3.0, 10.0]
            assert all(type(v) is float for v in result["sum_v"].values)
            assert all(type(v) is float for v in result["min_v"].values)
            zero = store.execute(empty_sum)["sum_v"].values
            assert zero == [0] and type(zero[0]) is int


# ----------------------------------------------------------------------
# the --query mini-DSL (satellite 3)
# ----------------------------------------------------------------------
def test_dsl_full_query():
    query = parse_query(
        "select workload, policy, miss_rate "
        "where config = 'tiny' and miss_rate > 0.1 "
        "order by miss_rate desc, workload limit 5")
    assert query == Query(
        table="cells",
        select=("workload", "policy", "miss_rate"),
        filters=(Filter("config", "eq", "tiny"),
                 Filter("miss_rate", "gt", 0.1)),
        order_by=(OrderBy("miss_rate", True), OrderBy("workload", False)),
        limit=5,
    )


def test_dsl_aggregates_and_group_by():
    query = parse_query(
        "group by workload agg mean(miss_rate) as mean_miss, count(), "
        "percentile(ipc, 0.9) order by mean_miss")
    assert query.group_by == ("workload",)
    assert query.aggregates == (
        Aggregate("mean", column="miss_rate", alias="mean_miss"),
        Aggregate("count"),
        Aggregate("percentile", column="ipc", q=0.9),
    )


def test_dsl_operators_and_literals():
    query = parse_query(
        "where a != 3 and b in (1, 'two', three) and c is null "
        "and d is not null and e not in (4.5) and f = true and g <= -2")
    assert query.filters == (
        Filter("a", "ne", 3),
        Filter("b", "in", (1, "two", "three")),
        Filter("c", "is_null"),
        Filter("d", "not_null"),
        Filter("e", "not_in", (4.5,)),
        Filter("f", "eq", True),
        Filter("g", "le", -2),
    )


def test_dsl_table_override_and_errors():
    assert parse_query("limit 3", table="trace").table == "trace"
    for bad in ["frobnicate x", "where a", "limit -1", "limit many",
                "agg nope(x)", "where a = ", "select",
                "group by g"]:  # group without aggregates
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)


def test_dsl_matches_hand_built_execution():
    table = make_table(workload=["astar", "lbm", "astar"],
                       miss_rate=[0.5, 0.3, 0.7])
    query = parse_query("group by workload agg mean(miss_rate) as m "
                        "order by m desc")
    result = run_query(query, {"cells": table})
    assert result["workload"].values == ["astar", "lbm"]
    assert result["m"].values == [0.6, 0.3]


# ----------------------------------------------------------------------
# ExperimentResult.query / top_k / join
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stored_experiment(tmp_path_factory):
    """A store-backed session with one completed 2x2 experiment."""
    from repro import CacheMind

    from conftest import SESSION_KWARGS

    store_dir = str(tmp_path_factory.mktemp("analytics") / "store")
    session = CacheMind(store_dir=store_dir, **SESSION_KWARGS)
    spec = session.experiment_spec(workloads=["astar", "lbm"],
                                   policies=["lru", "belady"])
    result = session.run_experiment(spec)
    return session, spec, result, store_dir


def test_experiment_query_group_by(stored_experiment):
    _session, _spec, result, _store_dir = stored_experiment
    table = result.query(Query(
        "cells", group_by=("workload",),
        aggregates=(Aggregate("count", alias="n"),
                    Aggregate("mean", column="miss_rate", alias="mean_miss"))))
    assert table["workload"].values == ["astar", "lbm"]
    assert table["n"].values == [2, 2]
    for workload, mean_miss in zip(table["workload"].values,
                                   table["mean_miss"].values):
        cells = [row["miss_rate"] for row in result.iter_rows()
                 if row["workload"] == workload]
        assert mean_miss == pytest.approx(sum(cells) / len(cells))
    # wire form and the sqlite backend give the same bytes
    assert result.query(table_query := Query.from_dict(Query(
        "cells", group_by=("workload",),
        aggregates=(Aggregate("count", alias="n"),
                    Aggregate("mean", column="miss_rate", alias="mean_miss"))
    ).to_dict())).to_dict() == table.to_dict()
    assert result.query(table_query, backend="sqlite").to_dict() == table.to_dict()


def test_experiment_top_k(stored_experiment):
    _session, _spec, result, _store_dir = stored_experiment
    worst = result.top_k("miss_rate", k=2)
    assert len(worst) == 2
    rates = sorted((row["miss_rate"] for row in result.iter_rows()),
                   reverse=True)
    assert worst["miss_rate"].values == rates[:2]
    best = result.top_k("miss_rate", k=1, descending=False,
                        where={"workload": "astar"})
    astar = [row["miss_rate"] for row in result.iter_rows()
             if row["workload"] == "astar"]
    assert best["miss_rate"].values == [min(astar)]
    with pytest.raises(ValueError):
        result.top_k("no_such_metric")


def test_experiment_self_join_has_zero_deltas(stored_experiment):
    _session, _spec, result, _store_dir = stored_experiment
    joined = result.join(result, metrics=("miss_rate", "ipc"))
    assert len(joined) == len(result)
    assert joined["miss_rate_other"].values == joined["miss_rate"].values
    assert joined["miss_rate_delta"].values == [0.0] * len(result)
    assert joined["ipc_delta"].values == [0.0] * len(result)
    sqlite_joined = result.join(result, metrics=("miss_rate", "ipc"),
                                backend="sqlite")
    assert sqlite_joined.to_dict() == joined.to_dict()


def test_experiment_iter_rows_is_lazy_and_matches_rows(stored_experiment):
    _session, _spec, result, _store_dir = stored_experiment
    iterator = result.iter_rows()
    first = next(iterator)
    assert first == result.row(0)
    assert [first] + list(iterator) == result.rows()


# ----------------------------------------------------------------------
# Sieve: every stage lookup runs through the engine, on either backend
# ----------------------------------------------------------------------
def test_sieve_stages_identical_across_backends(session):
    from repro.retrieval.sieve import SieveRetriever

    from test_serve import INTENT_QUESTIONS

    stdlib_sieve = SieveRetriever(session.database, analytics="stdlib")
    sqlite_sieve = SieveRetriever(session.database, analytics="sqlite")
    for question in INTENT_QUESTIONS:
        via_stdlib = stdlib_sieve.retrieve_text(question)
        via_sqlite = sqlite_sieve.retrieve_text(question)
        assert via_stdlib.text == via_sqlite.text, question
        assert via_stdlib.facts == via_sqlite.facts, question
        assert via_stdlib.sources == via_sqlite.sources, question
        assert via_stdlib.quality_label == via_sqlite.quality_label, question
        assert via_stdlib.generated_code == via_sqlite.generated_code, question


# ----------------------------------------------------------------------
# the serve layer: the `query` op and RemoteClient.query
# ----------------------------------------------------------------------
def test_remote_query_matches_in_process(stored_experiment):
    from repro.serve import CacheMindServer, CacheMindService, RemoteClient

    session, spec, result, _store_dir = stored_experiment
    query = parse_query("group by workload agg mean(miss_rate) as m, count() "
                        "order by m desc")
    expected = result.query(query)
    service = CacheMindService(session=session)
    try:
        with CacheMindServer(service, host="127.0.0.1", port=0).start() as server:
            host, port = server.address
            with RemoteClient(host, port) as client:
                # a unique fingerprint prefix resolves server-side
                remote = client.query(spec.fingerprint()[:10], query)
                assert remote.to_dict() == expected.to_dict()
                via_sqlite = client.query(spec.fingerprint(), query.to_dict(),
                                          backend="sqlite")
                assert via_sqlite.to_dict() == expected.to_dict()
    finally:
        service.close()


def test_query_op_error_paths(stored_experiment):
    from repro.serve import CacheMindServer, CacheMindService

    session, spec, _result, _store_dir = stored_experiment
    service = CacheMindService(session=session)
    try:
        server = CacheMindServer(service, host="127.0.0.1", port=0)
        wire = {"op": "query", "fingerprint": spec.fingerprint(),
                "query": Query("cells", limit=1).to_dict()}
        assert server.dispatch_line(json.dumps(wire).encode())["ok"] is True
        for broken in [
            {**wire, "fingerprint": "feedbeef"},        # no such experiment
            {**wire, "fingerprint": ""},                # missing fingerprint
            {**wire, "query": "select *"},              # query must be a dict
            {**wire, "query": {"table": "cells", "limit": -2}},
            # (any table name binds the cell table, so probe a bad column)
            {**wire, "query": {"table": "cells", "select": ["nope"]}},
            {**wire, "backend": "pandas"},              # unknown backend
        ]:
            reply = server.dispatch_line(json.dumps(broken).encode())
            assert reply["ok"] is False, broken
            assert reply["kind"] == "bad_request", broken
    finally:
        service.close()


def test_query_op_without_store_is_a_client_error(session):
    from repro.serve import CacheMindServer, CacheMindService

    service = CacheMindService(session=session)  # no store_dir attached
    try:
        server = CacheMindServer(service, host="127.0.0.1", port=0)
        reply = server.dispatch_line(json.dumps(
            {"op": "query", "fingerprint": "ab",
             "query": {"table": "cells"}}).encode())
        assert reply["ok"] is False
        assert reply["kind"] == "bad_request"
        assert "store" in reply["error"]
    finally:
        service.close()


# ----------------------------------------------------------------------
# CLI: experiment report --query / --format csv / --backend
# ----------------------------------------------------------------------
def test_cli_report_query_csv_identical_across_backends(stored_experiment, capsys):
    from repro.cli import main

    _session, spec, result, store_dir = stored_experiment
    dsl = ("group by workload agg mean(miss_rate) as m, count() "
           "order by m desc")
    base = ["experiment", "report", "--store-dir", store_dir,
            "--fingerprint", spec.fingerprint()[:8], "--query", dsl]
    assert main([*base, "--format", "csv"]) == 0
    via_stdlib = capsys.readouterr().out
    assert main([*base, "--format", "csv", "--backend", "sqlite"]) == 0
    via_sqlite = capsys.readouterr().out
    assert via_stdlib == via_sqlite  # byte-identical across backends
    assert via_stdlib.splitlines()[0] == "workload,m,count"
    assert via_stdlib == result.query(parse_query(dsl)).to_csv() + "\n"

    assert main(base) == 0  # default fixed-width rendering
    rendered = capsys.readouterr().out
    assert "workload" in rendered and "astar" in rendered

    assert main([*base, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["columns"] == result.query(parse_query(dsl)).to_dict()


def test_cli_report_query_json_wire_form(stored_experiment, capsys):
    from repro.cli import main

    _session, spec, result, store_dir = stored_experiment
    wire = json.dumps(Query("cells", select=("workload", "policy", "miss_rate"),
                            order_by=(OrderBy("miss_rate", True),),
                            limit=2).to_dict())
    assert main(["experiment", "report", "--store-dir", store_dir,
                 "--fingerprint", spec.fingerprint(), "--query", wire,
                 "--format", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[0] == "workload,policy,miss_rate"
    assert len(out.strip().splitlines()) == 3  # header + limit 2


def test_cli_report_query_errors(stored_experiment, capsys):
    from repro.cli import main

    _session, spec, _result, store_dir = stored_experiment
    base = ["experiment", "report", "--store-dir", store_dir,
            "--fingerprint", spec.fingerprint()]
    assert main([*base, "--query", "frobnicate"]) == 2
    assert "bad --query" in capsys.readouterr().err
    assert main([*base, "--query", '{"limit": 1}']) == 2  # missing table
    assert "bad --query" in capsys.readouterr().err
    assert main([*base, "--query", "select no_such_column"]) == 1
    assert "no_such_column" in capsys.readouterr().err
    assert main([*base, "--query", "limit 1", "--backend", "pandas"]) == 1
    assert "pandas" in capsys.readouterr().err
