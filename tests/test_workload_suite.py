"""Workload suite: composite generators, registry contracts, CLI guards.

Covers the two new synthetic generator families (phased, interleaved), the
registry's duplicate/unknown-name error paths, and the cross-process
determinism guarantee every synthetic workload must uphold (fingerprints
are content hashes, so CacheMindBench ground truths survive process
boundaries).
"""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.cli import main
from repro.errors import DuplicateNameError, UnknownNameError
from repro.workloads.composite import InterleavedWorkload, PhasedWorkload
from repro.workloads.generator import (
    available_workload_info,
    available_workloads,
    generate_trace,
    get_workload,
    register_workload,
    unregister_workload,
    workload_info,
    workload_kind,
)

SUBPROCESS_SEED = 3
SUBPROCESS_LENGTH = 600


def synthetic_names():
    return [info["name"] for info in available_workload_info()
            if info["kind"] == "synthetic"]


# ----------------------------------------------------------------------
# phased workload
# ----------------------------------------------------------------------
def test_phased_registered_and_deterministic():
    assert "phased" in available_workloads()
    assert workload_kind("phased") == "synthetic"
    first = generate_trace("phased", num_accesses=1200, seed=7)
    second = generate_trace("phased", num_accesses=1200, seed=7)
    assert first.fingerprint() == second.fingerprint()
    assert len(first) == 1200
    other_seed = generate_trace("phased", num_accesses=1200, seed=8)
    assert other_seed.fingerprint() != first.fingerprint()


def test_phased_phase_structure():
    generator = PhasedWorkload(seed=0)
    trace = generator.generate(1000)
    lengths = generator._phase_lengths(1000)
    assert sum(lengths) == 1000
    addresses = list(trace.columns()[1])
    regions = (PhasedWorkload.REGION_STREAM, PhasedWorkload.REGION_HOT,
               PhasedWorkload.REGION_RANDOM, PhasedWorkload.REGION_STRIDE)
    position = 0
    for region, length in zip(regions, lengths):
        window = addresses[position:position + length]
        assert all(region <= address < region + 0x100000000
                   for address in window), f"phase at {position} leaked"
        position += length
    # The streaming phase is sequential; the hot phase reuses a small set.
    stream = addresses[:lengths[0]]
    assert stream == sorted(stream)
    hot = addresses[lengths[0]:lengths[0] + lengths[1]]
    assert len(set(hot)) <= PhasedWorkload.HOT_BLOCKS


def test_phased_custom_schedule_and_validation():
    generator = PhasedWorkload(seed=0, phases=[("hot", 1.0)])
    trace = generator.generate(300)
    assert all(PhasedWorkload.REGION_HOT <= address
               < PhasedWorkload.REGION_HOT + 0x100000000
               for address in trace.columns()[1])
    with pytest.raises(ValueError, match="unknown phase pattern"):
        PhasedWorkload(phases=[("zigzag", 1.0)])
    with pytest.raises(ValueError, match="at least one phase"):
        PhasedWorkload(phases=[])
    with pytest.raises(ValueError, match="fractions must be positive"):
        PhasedWorkload(phases=[("hot", 0.0)])


# ----------------------------------------------------------------------
# interleaved workload
# ----------------------------------------------------------------------
def test_interleaved_registered_and_deterministic():
    assert "interleaved" in available_workloads()
    first = generate_trace("interleaved", num_accesses=1000, seed=2)
    second = generate_trace("interleaved", num_accesses=1000, seed=2)
    assert first.fingerprint() == second.fingerprint()
    assert len(first) == 1000


def test_interleaved_components_stay_disjoint():
    trace = InterleavedWorkload(seed=0).generate(1000)
    pcs, addresses = list(trace.columns()[0]), list(trace.columns()[1])
    slots = [address // InterleavedWorkload.ADDRESS_OFFSET
             for address in addresses]
    # Both programs actually run, in disjoint address/PC regions.
    assert set(slots) == {0, 1}
    for pc, slot in zip(pcs, slots):
        assert pc // InterleavedWorkload.PC_OFFSET == slot


def test_interleaved_preserves_component_prefixes():
    # Slot 0 is rebased by offset 0, so filtering its accesses out of the
    # interleaved stream must reproduce a prefix of the component's own
    # trace: contention changes scheduling, never the program.
    trace = InterleavedWorkload(seed=0).generate(800)
    component = generate_trace("astar", num_accesses=800, seed=0)
    slot0 = [(pc, address) for pc, address
             in zip(trace.columns()[0], trace.columns()[1])
             if address < InterleavedWorkload.ADDRESS_OFFSET]
    expected = list(zip(component.columns()[0], component.columns()[1]))
    assert slot0 == expected[:len(slot0)]
    assert len(slot0) > 0


def test_interleaved_binary_names_components():
    generator = InterleavedWorkload(seed=0)
    names = [function.name for function in generator.binary.functions]
    assert any(name.endswith("@astar") for name in names)
    assert any(name.endswith("@mcf") for name in names)


def test_interleaved_validation():
    with pytest.raises(ValueError, match="at least two"):
        InterleavedWorkload(components=["astar"])
    with pytest.raises(ValueError, match="cannot contain itself"):
        InterleavedWorkload(components=["astar", "interleaved"])
    with pytest.raises(ValueError, match="quantum must be positive"):
        InterleavedWorkload(quantum=0)
    with pytest.raises(UnknownNameError):
        InterleavedWorkload(components=["astar", "nonexistent"])


# ----------------------------------------------------------------------
# registry contracts (S1)
# ----------------------------------------------------------------------
def test_register_workload_duplicate_name_raises():
    class Impostor:
        name = "astar"
        kind = "synthetic"

    with pytest.raises(DuplicateNameError, match="already registered"):
        register_workload(Impostor)
    # Re-registering the same factory object is an idempotent no-op.
    factory = type(get_workload("astar"))
    assert register_workload(factory) is factory


def test_unknown_workload_errors_list_alternatives():
    with pytest.raises(UnknownNameError, match="available:"):
        get_workload("no_such_workload")
    with pytest.raises(UnknownNameError, match="no_such_workload"):
        workload_info("no_such_workload")
    # unregistering an absent name is a documented no-op
    unregister_workload("no_such_workload")


def test_generate_rejects_non_positive_length():
    with pytest.raises(ValueError, match="num_accesses must be positive"):
        generate_trace("astar", num_accesses=0)
    with pytest.raises(ValueError, match="num_accesses must be positive"):
        generate_trace("phased", num_accesses=-5)


# ----------------------------------------------------------------------
# cross-process determinism (S3)
# ----------------------------------------------------------------------
def test_every_synthetic_workload_is_fingerprint_stable_across_processes():
    names = synthetic_names()
    assert {"astar", "lbm", "mcf", "phased", "interleaved"} <= set(names)
    local = {name: generate_trace(name, num_accesses=SUBPROCESS_LENGTH,
                                  seed=SUBPROCESS_SEED).fingerprint()
             for name in names}
    script = (
        "import json, sys\n"
        "from repro.workloads.generator import (available_workload_info,\n"
        "                                       generate_trace)\n"
        f"names = {names!r}\n"
        "print(json.dumps({name: generate_trace(\n"
        f"    name, num_accesses={SUBPROCESS_LENGTH},"
        f" seed={SUBPROCESS_SEED}).fingerprint()\n"
        "    for name in names}))\n"
    )
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_root
    output = subprocess.run([sys.executable, "-c", script], env=env,
                            capture_output=True, text=True, check=True,
                            timeout=120).stdout
    remote = json.loads(output)
    assert remote == local


# ----------------------------------------------------------------------
# CLI guards and listings
# ----------------------------------------------------------------------
def test_cli_rejects_non_positive_accesses(capsys):
    code = main(["simulate", "--workload", "astar", "--policy", "lru",
                 "--config", "tiny", "--accesses", "0"])
    assert code == 1
    err = capsys.readouterr().err
    assert "error:" in err
    assert "--accesses must be a positive access count" in err
    assert "Traceback" not in err


def test_cli_rejects_negative_accesses_for_ask(capsys):
    code = main(["ask", "--accesses", "-3",
                 "What is the miss rate of lru on astar?"])
    assert code == 1
    assert "--accesses must be a positive access count" in \
        capsys.readouterr().err


def test_cli_list_includes_composite_generators(capsys):
    assert main(["simulate", "--list"]) == 0
    out = capsys.readouterr().out
    assert "phased" in out and "interleaved" in out
    assert "[synthetic]" in out
    # Descriptions ride along so the listing is self-explanatory.
    assert "phase-structured" in out
    assert "time-sliced" in out


def test_cli_simulate_runs_phased_workload(capsys):
    code = main(["simulate", "--workload", "phased", "--policy", "lru",
                 "--config", "tiny", "--accesses", "400"])
    assert code == 0
    out = capsys.readouterr().out
    assert "phased under lru" in out
    assert "400 LLC accesses" in out


def test_cli_experiment_sweeps_composite_workloads(capsys):
    code = main(["experiment", "run", "--workloads", "phased,interleaved",
                 "--policies", "lru,belady", "--configs", "tiny",
                 "--accesses", "400"])
    assert code == 0
    out = capsys.readouterr().out
    assert "4 cells" in out
    assert "phased" in out and "interleaved" in out
