"""The columnar MemoryTrace spine.

Typed-array columns behind the TraceAccess row API, zero-copy slices,
memoised derived values (total_instructions, fingerprint) and the pinned
fingerprint values that keep memoiser/store keys stable across revisions.
"""

import copy
import pickle
from array import array

import pytest

from repro.workloads.generator import generate_trace
from repro.workloads.trace import (
    COLUMN_TYPECODES,
    FLAG_PREFETCH,
    FLAG_WRITE,
    MemoryTrace,
    TraceAccess,
)

#: Pinned content fingerprints: memoiser and persistent-store keys embed
#: these, so changing the fingerprint scheme silently invalidates every
#: existing store.  If this test fails you changed trace identity — bump
#: STORE_SCHEMA_VERSION and re-pin deliberately.
PINNED_FINGERPRINTS = {
    "astar": 1488255439,
    "lbm": 684149222,
    "mcf": 4047000527,
}
PINNED_HAND_FINGERPRINT = 2073111361


def _hand_trace():
    return MemoryTrace(workload="hand", accesses=[
        TraceAccess(pc=0x400, address=0x1000, instructions_since_last=4),
        TraceAccess(pc=0x404, address=0x1040, is_write=True,
                    instructions_since_last=2),
        TraceAccess(pc=0x408, address=0x1080, instructions_since_last=0,
                    is_prefetch=True),
    ], seed=7)


def test_columns_are_typed_arrays():
    trace = _hand_trace()
    columns = trace.columns()
    assert [column.typecode for column in columns] == list(COLUMN_TYPECODES)
    assert all(isinstance(column, array) for column in columns)
    pcs, addresses, flags, instr = columns
    assert list(pcs) == [0x400, 0x404, 0x408]
    assert list(addresses) == [0x1000, 0x1040, 0x1080]
    assert list(flags) == [0, FLAG_WRITE, FLAG_PREFETCH]
    assert list(instr) == [4, 2, 0]


def test_row_view_yields_trace_accesses():
    trace = _hand_trace()
    rows = list(trace)
    assert [type(row) for row in rows] == [TraceAccess] * 3
    assert rows[1] == TraceAccess(pc=0x404, address=0x1040, is_write=True,
                                  instructions_since_last=2)
    assert trace[2].is_prefetch and not trace[2].is_write
    assert trace[-1] == trace[2]
    # The accesses attribute is a live sequence view, not a copied list.
    view = trace.accesses
    assert len(view) == 3
    assert view[0].pc == 0x400
    assert [a.pc for a in view[1:3]] == [0x404, 0x408]
    assert list(view) == rows


def test_slice_is_zero_copy_and_copy_on_write():
    trace = generate_trace("astar", 200, seed=0)
    window = trace.slice(50, 100)
    assert window.is_view and not trace.is_view
    assert len(window) == 50
    assert window[0] == trace[50]
    # Same underlying buffer: the view costs no copy...
    pcs_view = window.columns()[0]
    assert isinstance(pcs_view, memoryview)
    # ...until mutated, when it materialises without touching the parent.
    window.append(TraceAccess(pc=1, address=2))
    assert not window.is_view
    assert len(window) == 51 and len(trace) == 200
    assert trace[50] == window[0]


def test_parent_mutation_after_slice_copies_on_write():
    trace = generate_trace("astar", 100, seed=0)
    window = trace.slice(0, 50)
    before = window[0]
    # The parent sheds the exported buffers instead of raising BufferError.
    trace.append(TraceAccess(pc=9, address=8))
    trace.extend([TraceAccess(pc=10, address=16)])
    assert len(trace) == 102 and len(window) == 50
    assert window[0] == before == trace[0]


def test_total_instructions_memoised_with_append_invalidation():
    trace = _hand_trace()
    assert trace._total_instructions is None
    # 4+1 and 2+1 retired; the prefetch contributes nothing.
    assert trace.total_instructions == 8
    assert trace._total_instructions == 8  # memoised
    trace.append(TraceAccess(pc=0x40c, address=0x10c0,
                             instructions_since_last=9))
    assert trace._total_instructions is None  # invalidated
    assert trace.total_instructions == 18


def test_fingerprint_memoised_and_invalidated():
    trace = _hand_trace()
    first = trace.fingerprint()
    assert trace._fingerprint == first
    trace.extend([TraceAccess(pc=1, address=2)])
    assert trace._fingerprint is None
    assert trace.fingerprint() != first


@pytest.mark.parametrize("workload,expected",
                         sorted(PINNED_FINGERPRINTS.items()))
def test_fingerprint_pinned_for_generated_traces(workload, expected):
    assert generate_trace(workload, 300, seed=0).fingerprint() == expected


def test_fingerprint_pinned_for_hand_built_trace():
    assert _hand_trace().fingerprint() == PINNED_HAND_FINGERPRINT


def test_fingerprint_covers_instruction_gaps():
    base = MemoryTrace(workload="w", accesses=[
        TraceAccess(pc=1, address=2, instructions_since_last=4)])
    shifted = MemoryTrace(workload="w", accesses=[
        TraceAccess(pc=1, address=2, instructions_since_last=5)])
    # Different IPC-relevant content must not collide.
    assert base.fingerprint() != shifted.fingerprint()


def test_slice_fingerprint_matches_materialised_copy():
    trace = generate_trace("lbm", 120, seed=1)
    window = trace.slice(10, 90)
    rebuilt = MemoryTrace(workload=trace.workload,
                          accesses=list(window),
                          binary=trace.binary,
                          description=trace.description,
                          seed=trace.seed)
    assert window.fingerprint() == rebuilt.fingerprint()
    assert window == rebuilt


def test_pickle_and_deepcopy_materialise_views():
    trace = generate_trace("mcf", 100, seed=2)
    window = trace.slice(0, 40)
    for clone in (pickle.loads(pickle.dumps(window)), copy.deepcopy(window)):
        assert not clone.is_view
        assert clone.fingerprint() == window.fingerprint()
        assert list(clone) == list(window)


def test_unique_and_count_helpers_read_columns():
    trace = _hand_trace()
    trace.append(TraceAccess(pc=0x400, address=0x1000))
    assert trace.unique_pcs == [0x400, 0x404, 0x408]
    assert trace.unique_addresses == [0x1000, 0x1040, 0x1080]
    assert trace.pc_access_counts() == {0x400: 2, 0x404: 1, 0x408: 1}
