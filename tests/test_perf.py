"""Perf harness report shape and the bench CLI timing output."""

import json
import os

from repro.cli import main
from repro.perf import (
    current_revision,
    default_report_path,
    format_report,
    run_perf_suite,
    write_report,
)
from repro.sim.config import TINY_CONFIG

SUITE_KWARGS = dict(quick=True, workloads=("astar",), policies=("lru",),
                    config=TINY_CONFIG, num_accesses=400, repeats=1, jobs=1)


def test_run_perf_suite_report_shape():
    report = run_perf_suite(**SUITE_KWARGS)
    assert report["schema"] == 1
    assert report["quick"] is True
    assert report["params"]["num_accesses"] == 400
    names = [timing["name"] for timing in report["timings"]]
    assert "trace_generation/astar" in names
    assert "replay_full/astar/lru" in names
    assert "replay_stats/astar/lru" in names
    assert "database_build/cold_serial" in names
    assert "database_build/warm_memoised" in names
    assert "store/cold_build_and_save" in names
    assert "database_build/store_warm" in names
    assert all(timing["seconds"] >= 0 for timing in report["timings"])
    derived = report["derived"]
    assert derived["stats_replay_speedup"]["astar/lru"] > 0
    assert derived["warm_build_speedup"] > 1  # memoised rebuild must be faster
    store_section = report["store_warm_start"]
    assert store_section["speedup"] == derived["store_warm_speedup"] > 0
    assert store_section["zero_simulations"] is True
    assert store_section["store_records"] >= 1


def test_run_perf_suite_serving_section():
    report = run_perf_suite(**SUITE_KWARGS)
    names = [timing["name"] for timing in report["timings"]]
    assert "serving/batch_ask" in names
    serving = report["serving"]
    assert serving["questions_per_batch"] >= 1
    assert serving["throughput_qps"] > 0
    assert serving["errors"] == 0
    assert serving["latency_ms"]["p95"] >= serving["latency_ms"]["p50"] >= 0
    derived = report["derived"]
    assert derived["serving_qps"] == serving["throughput_qps"]
    assert "serving:" in format_report(report)


def test_run_perf_suite_analytics_section():
    report = run_perf_suite(**SUITE_KWARGS)
    names = [timing["name"] for timing in report["timings"]]
    assert "analytics/stdlib_small" in names
    assert "analytics/sqlite_spill_small" in names
    assert "analytics/sqlite_small" in names
    assert "analytics/stdlib_large" in names
    analytics = report["analytics"]
    assert analytics["all_identical"] is True
    assert len(analytics["sizes"]) == 2
    for size in analytics["sizes"]:
        assert size["identical"] is True
        assert size["stdlib_rows_per_second"] > 0
        assert size["sqlite_rows_per_second"] > 0
    derived = report["derived"]
    largest = analytics["sizes"][-1]
    assert derived["analytics_stdlib_rows_per_s"] == largest["stdlib_rows_per_second"]
    assert derived["analytics_sqlite_rows_per_s"] == largest["sqlite_rows_per_second"]
    rendered = format_report(report)
    assert "analytics:" in rendered and "identical" in rendered


def test_run_perf_suite_keeps_named_store_dir(tmp_path):
    store_dir = str(tmp_path / "bench_store")
    report = run_perf_suite(store_dir=store_dir, **SUITE_KWARGS)
    section = report["store_warm_start"]
    assert section["store_dir"] == store_dir
    assert os.path.isdir(store_dir)  # kept for artifact upload
    assert section["store_records"] >= 1


def test_write_and_format_report(tmp_path):
    report = run_perf_suite(**SUITE_KWARGS)
    path = tmp_path / "BENCH_test.json"
    written = write_report(report, path=str(path))
    assert written == str(path)
    loaded = json.loads(path.read_text())
    assert loaded["revision"] == report["revision"]
    rendered = format_report(report)
    assert "perf suite @" in rendered
    assert "stats-only replay speedup" in rendered


def test_default_report_path_uses_revision():
    assert default_report_path("abc1234") == "BENCH_abc1234.json"
    assert current_revision()  # never empty


def test_bench_cli_prints_timings_and_cache_stats(capsys):
    code = main(["bench", "--workloads", "astar", "--policies", "lru,belady",
                 "--accesses", "400", "--config", "tiny"])
    assert code == 0
    out = capsys.readouterr().out
    assert "built in" in out and "ms/simulation" in out
    assert "simulation cache:" in out


def test_bench_cli_perf_mode_writes_report(tmp_path, capsys):
    output = tmp_path / "BENCH_cli.json"
    code = main(["bench", "--perf", "--quick", "--workloads", "astar",
                 "--policies", "lru", "--accesses", "400", "--config", "tiny",
                 "--perf-output", str(output)])
    assert code == 0
    out = capsys.readouterr().out
    assert "perf suite @" in out
    assert output.exists()
    report = json.loads(output.read_text())
    assert report["params"]["policies"] == ["lru"]
    assert report["params"]["num_accesses"] == 400
