"""Serving stack: CacheMindService, the JSON-lines server, RemoteClient.

The flagship acceptance test proves byte-identical answers across all three
entry points — legacy ``CacheMind.ask``, ``CacheMindService.ask`` and the
JSON server round-trip — for every intent type.
"""

import asyncio
import json
import socket
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import CacheMind
from repro.core.pipeline import SimulationCache
from repro.serve import CacheMindServer, CacheMindService, RemoteClient
from repro.serve.client import RemoteError, parse_address
from repro.serve.service import percentile

from conftest import SESSION_KWARGS

#: one question per CacheMindBench intent type (plus the premise-violation
#: trick and the general fallback) — the equivalence matrix.
INTENT_QUESTIONS = [
    "Is the access at PC 0x4008a0 address 0xaff500406999 a hit or a miss "
    "in astar under lru?",                                     # hit_miss
    "What is the miss rate of lru on astar?",                  # miss_rate
    "Which policy has the lowest miss rate on astar?",         # policy_comparison
    "How many accesses are there in astar under lru?",         # count
    "What is the average reuse distance in astar under lru?",  # arithmetic
    "What is the miss rate for PC 0xdead00 in astar under lru?",  # trick
    "How does increasing associativity affect conflict misses?",  # concept
    "Write code to compute the miss rate for lbm.",            # code_generation
    "Why does belady outperform lru on astar?",                # policy_analysis
    "Which workload has the highest miss rate under lru?",     # workload_analysis
    "Why is PC 0x4008a0 missing so often in astar? Examine the assembly.",
                                                               # semantic_analysis
    "List all unique PCs in astar under lru.",                 # pc_list
    "Which cache sets are hot and cold in astar under lru?",   # set_analysis
    "Why do caches use replacement policies?",                 # general
]


def fresh_session() -> CacheMind:
    return CacheMind(simulation_cache=SimulationCache(), **SESSION_KWARGS)


@pytest.fixture()
def service():
    with CacheMindService(session=fresh_session()) as service:
        yield service


@pytest.fixture()
def server():
    with CacheMindServer(CacheMindService(session=fresh_session()),
                         host="127.0.0.1", port=0).start() as server:
        yield server


# ----------------------------------------------------------------------
# the acceptance criterion: three entry points, byte-identical answers
# ----------------------------------------------------------------------
def test_three_entry_points_byte_identical_for_every_intent(server):
    legacy = fresh_session()
    service = CacheMindService(session=fresh_session())
    host, port = server.address
    with RemoteClient(host, port) as client:
        for question in INTENT_QUESTIONS:
            expected = json.dumps(legacy.ask(question).to_dict(),
                                  sort_keys=True)
            via_service = json.dumps(service.ask(question).answer.to_dict(),
                                     sort_keys=True)
            via_server = json.dumps(client.ask(question).answer.to_dict(),
                                    sort_keys=True)
            assert via_service == expected, f"service diverged on {question!r}"
            assert via_server == expected, f"server diverged on {question!r}"


def test_intent_questions_cover_the_taxonomy():
    # The equivalence matrix must actually exercise every question type.
    session = fresh_session()
    covered = {session.plan(question).intent.question_type
               for question in INTENT_QUESTIONS}
    assert covered >= {
        "hit_miss", "miss_rate", "policy_comparison", "count", "arithmetic",
        "concept", "code_generation", "policy_analysis", "workload_analysis",
        "semantic_analysis", "pc_list", "set_analysis", "general"}


# ----------------------------------------------------------------------
# CacheMindService
# ----------------------------------------------------------------------
def test_service_assigns_request_ids(service):
    first = service.ask("What is the miss rate of lru on astar?")
    second = service.ask("What is the miss rate of belady on astar?")
    assert first.request_id == "req-1"
    assert second.request_id == "req-2"
    explicit = service.ask_batch(
        ["What is the miss rate of lru on lbm?"])[0]
    assert explicit.request_id == "req-3"


def test_service_stats_telemetry(service):
    service.ask_batch(["What is the miss rate of lru on astar?",
                       "What is the miss rate of belady on astar?"])
    stats = service.stats()
    assert stats["requests"] == 2
    assert stats["batches"] == 1
    assert stats["errors"] == 0
    assert stats["qps"] > 0
    assert stats["latency_ms"]["count"] == 2
    assert stats["latency_ms"]["p95"] >= stats["latency_ms"]["p50"] >= 0
    assert stats["simulation_cache_delta"]["misses"] == len(
        SESSION_KWARGS["workloads"]) * len(SESSION_KWARGS["policies"])
    assert stats["session"]["workloads"] == list(SESSION_KWARGS["workloads"])


def test_service_counts_errors(service):
    with pytest.raises(Exception):
        service.ask("What is the miss rate of lru on astar?",
                    retriever="no-such-retriever")
    assert service.stats()["errors"] == 1


def test_service_concurrent_threads_consistent(service):
    question = "Which policy has the lowest miss rate on astar?"
    expected = fresh_session().ask(question).to_dict()
    with ThreadPoolExecutor(max_workers=8) as pool:
        responses = list(pool.map(
            lambda _: service.ask(question), range(16)))
    assert all(response.answer.to_dict() == expected
               for response in responses)
    stats = service.stats()
    assert stats["requests"] == 16
    # One shared session: the database was built exactly once.
    assert stats["database_builds"] == 1


def test_service_async_gather(service):
    questions = ["What is the miss rate of lru on astar?",
                 "What is the miss rate of belady on astar?",
                 "How many accesses are there in astar under lru?"]
    expected = [answer.to_dict()
                for answer in fresh_session().ask_many(questions)]

    async def main():
        return await asyncio.gather(
            *[service.ask_async(question) for question in questions])

    responses = asyncio.run(main())
    assert [response.answer.to_dict() for response in responses] == expected


def test_service_rejects_session_plus_kwargs():
    with pytest.raises(ValueError):
        CacheMindService(session=fresh_session(), workloads=["astar"])


def test_service_ask_async_after_close_raises():
    service = CacheMindService(session=fresh_session())
    service.close()

    async def main():
        await service.ask_async("What is the miss rate of lru on astar?")

    with pytest.raises(RuntimeError):
        asyncio.run(main())


def test_remote_client_drops_connection_on_non_json_reply():
    import socketserver
    import threading

    class GarbageHandler(socketserver.StreamRequestHandler):
        def handle(self):
            self.rfile.readline()
            self.wfile.write(b"HTTP/1.1 400 not the protocol\r\n")

    class GarbageServer(socketserver.ThreadingTCPServer):
        daemon_threads = True
        allow_reuse_address = True

    with GarbageServer(("127.0.0.1", 0), GarbageHandler) as tcp:
        threading.Thread(target=tcp.serve_forever, daemon=True).start()
        host, port = tcp.server_address[:2]
        client = RemoteClient(host, port, timeout=5)
        with pytest.raises(ValueError):
            client.request({"op": "ping"})
        # The poisoned connection was dropped, not left desynchronized.
        assert client._sock is None
        tcp.shutdown()


def test_service_batch_dedup_visible_in_response(service):
    responses = service.ask_batch(
        ["What is the miss rate of lru on astar?"] * 4)
    matrix = len(SESSION_KWARGS["workloads"]) * len(SESSION_KWARGS["policies"])
    assert responses[0].batch_unique_jobs == matrix
    assert responses[0].batch_duplicate_jobs == 3 * matrix


def test_percentile_nearest_rank():
    values = [0.01, 0.02, 0.03, 0.04, 0.1]
    assert percentile(values, 0.5) == 0.03
    assert percentile(values, 0.95) == 0.1
    assert percentile([], 0.5) == 0.0


# ----------------------------------------------------------------------
# JSON-lines server + RemoteClient
# ----------------------------------------------------------------------
def test_server_ask_batch_and_stats_ops(server):
    host, port = server.address
    with RemoteClient(host, port) as client:
        assert client.ping()
        response = client.ask("What is the miss rate of lru on astar?",
                              request_id="my-id")
        assert response.request_id == "my-id"
        assert response.server.get("transport") == "json-lines/tcp"
        batch = client.ask_batch(["What is the miss rate of lru on astar?",
                                  "What is the miss rate of belady on lbm?"])
        assert len(batch) == 2
        assert batch[0].answer.grounded
        stats = client.stats()
        assert stats["requests"] == 3


def test_server_concurrent_clients(server):
    host, port = server.address
    questions = INTENT_QUESTIONS[:8]
    expected = {question: json.dumps(answer.to_dict(), sort_keys=True)
                for question, answer in zip(
                    questions, fresh_session().ask_many(questions))}

    def remote_ask(question):
        with RemoteClient(host, port) as client:
            return question, client.ask(question)

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(remote_ask, questions))
    assert len(results) == 8
    for question, response in results:
        assert (json.dumps(response.answer.to_dict(), sort_keys=True)
                == expected[question])


def test_server_protocol_errors_keep_connection_alive(server):
    host, port = server.address
    with socket.create_connection((host, port), timeout=10) as raw:
        reader = raw.makefile("rb")
        raw.sendall(b"this is not json\n")
        reply = json.loads(reader.readline())
        assert reply["ok"] is False and "malformed" in reply["error"]
        raw.sendall(b'{"op": "nope"}\n')
        reply = json.loads(reader.readline())
        assert reply["ok"] is False and "unknown op" in reply["error"]
        raw.sendall(b'{"op": "ask"}\n')
        reply = json.loads(reader.readline())
        assert reply["ok"] is False and "question" in reply["error"]
        raw.sendall(b'[1, 2, 3]\n')
        reply = json.loads(reader.readline())
        assert reply["ok"] is False and "JSON object" in reply["error"]
        # The same connection still answers real requests afterwards.
        raw.sendall(b'{"op": "ping"}\n')
        reply = json.loads(reader.readline())
        assert reply["ok"] is True and reply["result"]["pong"] is True


def test_server_bad_batch_retriever_keeps_connection_alive(server):
    # Regression: an unvalidated non-string retriever used to raise
    # AttributeError past the dispatch catch and silently kill the
    # connection instead of answering {"ok": false}.
    host, port = server.address
    with socket.create_connection((host, port), timeout=10) as raw:
        reader = raw.makefile("rb")
        raw.sendall(b'{"op": "batch", "questions": ["q"], "retriever": 42}\n')
        reply = json.loads(reader.readline())
        assert reply["ok"] is False and "retriever" in reply["error"]
        raw.sendall(b'{"op": "ping"}\n')
        assert json.loads(reader.readline())["ok"] is True


def test_server_close_without_serving_returns():
    # Regression: close() on a never-started server used to block forever
    # in BaseServer.shutdown().
    server = CacheMindServer(CacheMindService(session=fresh_session()),
                             host="127.0.0.1", port=0)
    server.close()  # must return promptly
    # And serve_forever after close is a no-op rather than an OSError on
    # the closed socket.
    server.serve_forever()


def test_conversation_memory_and_history_are_bounded():
    from repro.llm.memory import ConversationMemory

    memory = ConversationMemory(max_items=10, max_summaries=2)
    for turn in range(50):
        memory.add_turn("user", f"question {turn}")
    assert len(memory) == 10
    assert len(memory.summaries()) <= 2
    session = fresh_session()
    session.MAX_HISTORY = 3
    for _ in range(5):
        session.ask("What is the miss rate of lru on astar?")
    assert len(session.history) == 3


def test_server_unknown_retriever_is_client_error(server):
    host, port = server.address
    with RemoteClient(host, port) as client:
        with pytest.raises(RemoteError):
            client.ask("What is the miss rate of lru on astar?",
                       retriever="bogus")
        assert client.ping()  # connection survives


def test_remote_client_wait_ready(server):
    host, port = server.address
    assert RemoteClient.wait_ready(host, port, timeout=10)
    # A dead port raises on timeout, carrying the last probe failure
    # instead of a bare False.
    with pytest.raises(ConnectionError, match=r"127\.0\.0\.1:1") as excinfo:
        RemoteClient.wait_ready("127.0.0.1", 1, timeout=0.5)
    assert excinfo.value.__cause__ is not None


def test_parse_address():
    assert parse_address("example.com:9000") == ("example.com", 9000)
    assert parse_address("example.com") == ("example.com", 9178)
    with pytest.raises(ValueError):
        parse_address("host:notaport")
    with pytest.raises(ValueError):
        parse_address("")
