"""Simulation engine determinism and trace reproducibility."""

from repro.sim.config import TINY_CONFIG
from repro.sim.engine import SimulationEngine
from repro.workloads.generator import generate_trace


def _run(trace, policy_name):
    engine = SimulationEngine(config=TINY_CONFIG)
    return engine.run(trace, policy_name)


def test_trace_generation_is_deterministic():
    first = generate_trace("astar", num_accesses=500, seed=0)
    second = generate_trace("astar", num_accesses=500, seed=0)
    assert len(first) == len(second) == 500
    assert [(a.pc, a.address, a.is_write) for a in first] == \
           [(a.pc, a.address, a.is_write) for a in second]


def test_different_seeds_differ():
    first = generate_trace("astar", num_accesses=500, seed=0)
    second = generate_trace("astar", num_accesses=500, seed=1)
    assert [(a.pc, a.address) for a in first] != \
           [(a.pc, a.address) for a in second]


def test_engine_is_deterministic_for_same_trace_and_policy():
    trace = generate_trace("astar", num_accesses=500, seed=0)
    first = _run(trace, "lru")
    second = _run(trace, "lru")
    assert first.llc_stats.accesses == second.llc_stats.accesses
    assert first.llc_stats.hits == second.llc_stats.hits
    assert first.llc_stats.misses == second.llc_stats.misses
    assert first.wrong_evictions == second.wrong_evictions
    assert first.timing.ipc == second.timing.ipc
    assert len(first.records) == len(second.records)
    for a, b in zip(first.records, second.records):
        assert a.program_counter == b.program_counter
        assert a.memory_address == b.memory_address
        assert a.is_hit == b.is_hit
        assert a.evicted_address == b.evicted_address


def test_policies_actually_differ():
    trace = generate_trace("astar", num_accesses=500, seed=0)
    lru = _run(trace, "lru")
    belady = _run(trace, "belady")
    # Belady's OPT is an oracle: it cannot do worse than LRU on misses.
    assert belady.llc_stats.misses <= lru.llc_stats.misses
