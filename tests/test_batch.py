"""BatchSimulator: lockstep multi-rollout replay must be byte-identical.

The batch kernel is an execution strategy, not a new simulator: every
rollout — native lockstep kernel or engine-with-shared-precomputes — must
produce exactly the result a standalone ``SimulationEngine.run`` would,
down to float accumulation order in the timing model and every column of
the full-detail access log.  These tests pin that contract across the
policy x workload x mode x detail matrix, plus the wiring that selects the
strategy (ExperimentRunner, build_database, ParallelSimulator fallback)
and the perf-report comparison tooling that rides along.
"""

import dataclasses
import pickle

import pytest

from repro.core.experiment import ExperimentRunner
from repro.core.pipeline import SimulationCache
from repro.policies import available_policies, get_policy
from repro.sim.batch import (
    BatchSimulator,
    NATIVE_POLICIES,
    RolloutSpec,
    rollout_strategy,
    run_batch,
)
from repro.sim.config import SMALL_CONFIG, TINY_CONFIG
from repro.sim.engine import SimulationEngine
from repro.sim.parallel import ParallelSimulator, SimulationJob, planned_strategy
from repro.perf.harness import compare_reports
from repro.tracedb.database import build_database
from repro.workloads.generator import generate_trace

NUM_ACCESSES = 600
WORKLOADS = ("astar", "lbm")

EXPERIMENT_SPEC = dict(workloads=list(WORKLOADS),
                       policies=["lru", "belady", "hawkeye"],
                       configs=["tiny"], detail="stats",
                       num_accesses=[NUM_ACCESSES], seeds=[1])


def _trace(workload, seed=7):
    return generate_trace(workload, NUM_ACCESSES, seed)


def _single(trace, spec):
    engine = SimulationEngine(config=spec.config, mode=spec.mode,
                              detail=spec.detail,
                              max_records=spec.max_records)
    return engine.run(trace, get_policy(spec.policy))


def _assert_identical(batched, single):
    assert batched.llc_stats.as_tuple() == single.llc_stats.as_tuple()
    assert batched.timing.instructions == single.timing.instructions
    assert batched.timing.base_cycles == single.timing.base_cycles
    assert batched.timing.stall_cycles == single.timing.stall_cycles
    assert batched.timing.stalls_by_level == single.timing.stalls_by_level
    assert (batched.timing.accesses_by_level
            == single.timing.accesses_by_level)
    assert batched.policy_name == single.policy_name
    assert batched.policy_description == single.policy_description
    assert batched.wrong_evictions == single.wrong_evictions
    assert set(batched.level_stats) == set(single.level_stats)
    for level in batched.level_stats:
        assert (batched.level_stats[level].as_tuple()
                == single.level_stats[level].as_tuple())
    assert (batched.log is None) == (single.log is None)
    if batched.log is not None:
        assert pickle.dumps(batched.log) == pickle.dumps(single.log)


# ----------------------------------------------------------------------
# equivalence matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["llc_only", "hierarchy"])
@pytest.mark.parametrize("detail", ["stats", "full"])
def test_batch_matches_engine_for_every_policy(mode, detail):
    for workload in WORKLOADS:
        trace = _trace(workload)
        specs = [RolloutSpec(policy, TINY_CONFIG, mode=mode, detail=detail)
                 for policy in available_policies()]
        results = BatchSimulator(trace).run(specs)
        for spec, batched in zip(specs, results):
            _assert_identical(batched, _single(trace, spec))


def test_mixed_specs_in_one_batch():
    """One batch mixing configs, details and policies stays per-cell exact."""
    trace = _trace("astar")
    specs = [
        RolloutSpec("lru", TINY_CONFIG),
        RolloutSpec("belady", SMALL_CONFIG),
        RolloutSpec("srrip", TINY_CONFIG, detail="full"),
        RolloutSpec("hawkeye", TINY_CONFIG),
        RolloutSpec("fifo", SMALL_CONFIG, detail="full", max_records=50),
    ]
    results = run_batch(trace, specs)
    assert len(results) == len(specs)
    for spec, batched in zip(specs, results):
        _assert_identical(batched, _single(trace, spec))


# ----------------------------------------------------------------------
# strategy selection
# ----------------------------------------------------------------------
def test_rollout_strategy_native_coverage():
    for policy in NATIVE_POLICIES:
        assert (rollout_strategy(RolloutSpec(policy, TINY_CONFIG))
                == f"native:{policy}")
    # Everything outside the native envelope goes through the engine.
    assert rollout_strategy(RolloutSpec("hawkeye", TINY_CONFIG)) == "engine"
    assert (rollout_strategy(RolloutSpec("lru", TINY_CONFIG, detail="full"))
            == "engine")
    assert (rollout_strategy(RolloutSpec("lru", TINY_CONFIG,
                                         mode="hierarchy")) == "engine")


def test_non_pow2_geometry_falls_back_to_engine():
    llc = TINY_CONFIG.llc
    odd_llc = dataclasses.replace(
        llc, size_bytes=3 * llc.num_ways * llc.block_bytes)
    odd_config = dataclasses.replace(TINY_CONFIG, name="tiny-odd",
                                     llc=odd_llc)
    assert odd_llc.num_sets == 3
    spec = RolloutSpec("lru", odd_config)
    assert rollout_strategy(spec) == "engine"
    trace = _trace("lbm")
    batched, = BatchSimulator(trace).run([spec])
    _assert_identical(batched, _single(trace, spec))


def test_run_records_strategies():
    trace = _trace("astar")
    simulator = BatchSimulator(trace)
    simulator.run([RolloutSpec("lru", TINY_CONFIG),
                   RolloutSpec("mlp", TINY_CONFIG)])
    assert simulator.strategies == ["native:lru", "engine"]


def test_rollout_spec_validation():
    with pytest.raises(ValueError):
        RolloutSpec("lru", TINY_CONFIG, mode="bogus")
    with pytest.raises(ValueError):
        RolloutSpec("lru", TINY_CONFIG, detail="bogus")


# ----------------------------------------------------------------------
# ExperimentRunner wiring
# ----------------------------------------------------------------------
def test_experiment_batch_matches_single_strategy():
    batch = ExperimentRunner(simulation_cache=SimulationCache(),
                             strategy="auto").run(EXPERIMENT_SPEC)
    single = ExperimentRunner(simulation_cache=SimulationCache(),
                              strategy="single").run(EXPERIMENT_SPEC)
    assert batch.columns == single.columns
    assert batch.counters["batch_groups"] == len(WORKLOADS)
    assert batch.counters["batch_cells"] == batch.counters["simulations_run"]
    assert single.counters["batch_cells"] == 0


def test_experiment_full_detail_batch_matches_single():
    spec = dict(EXPERIMENT_SPEC, detail="full")
    batch = ExperimentRunner(simulation_cache=SimulationCache(),
                             strategy="auto").run(spec)
    single = ExperimentRunner(simulation_cache=SimulationCache(),
                              strategy="single").run(spec)
    assert batch.columns == single.columns
    assert batch.counters["batch_cells"] > 0


def test_experiment_singleton_uses_single_replay_under_auto():
    spec = dict(EXPERIMENT_SPEC, policies=["lru"], workloads=["astar"])
    result = ExperimentRunner(simulation_cache=SimulationCache(),
                              strategy="auto").run(spec)
    assert result.counters["batch_groups"] == 0
    assert result.counters["simulations_run"] == 1
    forced = ExperimentRunner(simulation_cache=SimulationCache(),
                              strategy="batch").run(spec)
    assert forced.counters["batch_groups"] == 1
    assert forced.columns == result.columns


def test_experiment_runner_rejects_unknown_strategy():
    with pytest.raises(ValueError):
        ExperimentRunner(strategy="bogus")


def test_warm_store_rerun_simulates_zero_cells_after_batch(tmp_path):
    store_dir = str(tmp_path / "store")
    cold = ExperimentRunner(
        simulation_cache=SimulationCache(store=store_dir)).run(
            EXPERIMENT_SPEC)
    assert cold.counters["batch_cells"] > 0
    # A fresh memoiser models a brand-new process: the batch results were
    # installed through put_result, so the store alone warms the re-run.
    warm = ExperimentRunner(
        simulation_cache=SimulationCache(store=store_dir)).run(
            EXPERIMENT_SPEC)
    assert warm.counters["simulations_run"] == 0
    assert warm.counters["batch_cells"] == 0
    assert warm.counters["store_hits"] == cold.counters["simulations_run"]
    assert warm.columns == cold.columns


# ----------------------------------------------------------------------
# database build wiring
# ----------------------------------------------------------------------
def test_build_database_serial_batches_policies_identically():
    database = build_database(workloads=("astar",),
                              policies=("lru", "belady", "srrip"),
                              num_accesses=NUM_ACCESSES, config=TINY_CONFIG)
    trace = generate_trace("astar", NUM_ACCESSES, seed=0)
    engine = SimulationEngine(config=TINY_CONFIG, mode="llc_only")
    for policy in ("lru", "belady", "srrip"):
        entry = database.entry(f"astar_evictions_{policy}")
        reference = engine.run(trace, get_policy(policy))
        assert (entry.result.llc_stats.as_tuple()
                == reference.llc_stats.as_tuple())
        assert (entry.result.timing.stall_cycles
                == reference.timing.stall_cycles)
        assert pickle.dumps(entry.result.log) == pickle.dumps(reference.log)


# ----------------------------------------------------------------------
# shared belady reuse precompute through SimulationCache
# ----------------------------------------------------------------------
def test_reuse_for_memoises_by_fingerprint():
    cache = SimulationCache()
    trace = _trace("astar")
    first = cache.reuse_for(trace, 64)
    assert cache.reuse_for(trace, 64) is first
    assert first.prev_use is None
    # Full upgrade replaces the stats-only entry but keeps the same arrays'
    # content; later full requests reuse the upgraded entry.
    full = cache.reuse_for(trace, 64, True)
    assert full.prev_use is not None
    assert full.next_use == first.next_use
    assert cache.reuse_for(trace, 64, True) is full
    assert cache.reuse_for(trace, 64) is full
    assert cache.stats()["reuse"] == 1
    # A different block size is a different precompute.
    assert cache.reuse_for(trace, 32) is not full
    assert cache.stats()["reuse"] == 2


def test_get_or_run_installs_reuse_cache_on_engine():
    cache = SimulationCache()
    trace = _trace("lbm")
    engine = SimulationEngine(config=TINY_CONFIG, mode="llc_only",
                              detail="stats")
    result = cache.get_or_run(engine, trace, "belady")
    assert engine.reuse_cache is not None
    assert cache.stats()["reuse"] == 1
    reference = SimulationEngine(config=TINY_CONFIG, mode="llc_only",
                                 detail="stats").run(trace, "belady")
    assert result.llc_stats.as_tuple() == reference.llc_stats.as_tuple()


# ----------------------------------------------------------------------
# ParallelSimulator single-core fallback
# ----------------------------------------------------------------------
def test_auto_executor_degrades_to_serial_on_single_core(monkeypatch):
    import repro.sim.parallel as parallel_module
    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 1)
    simulator = ParallelSimulator(jobs=4, executor="auto",
                                  config=TINY_CONFIG, detail="stats")
    jobs = [SimulationJob(workload=workload, policy="lru",
                          num_accesses=NUM_ACCESSES)
            for workload in WORKLOADS]
    results = simulator.run_results(jobs)
    assert len(results) == len(jobs)
    assert simulator.last_executor == "serial"
    assert simulator.last_strategy == {"executor": "serial",
                                       "reason": "single-core host"}


def test_explicit_executor_still_honoured_on_single_core(monkeypatch):
    import repro.sim.parallel as parallel_module
    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 1)
    simulator = ParallelSimulator(jobs=2, executor="thread",
                                  config=TINY_CONFIG, detail="stats")
    results = simulator.run_results(
        [SimulationJob(workload="astar", policy="lru",
                       num_accesses=NUM_ACCESSES),
         SimulationJob(workload="lbm", policy="lru",
                       num_accesses=NUM_ACCESSES)])
    assert len(results) == 2
    assert simulator.last_executor == "thread"
    assert simulator.last_strategy["reason"] == "parallel"


def test_serial_strategy_reasons():
    simulator = ParallelSimulator(jobs=1, executor="auto",
                                  config=TINY_CONFIG, detail="stats")
    simulator.run_results([SimulationJob(workload="astar", policy="lru",
                                         num_accesses=NUM_ACCESSES)])
    assert simulator.last_strategy == {"executor": "serial",
                                       "reason": "jobs=1"}
    requested = ParallelSimulator(jobs=4, executor="serial",
                                  config=TINY_CONFIG, detail="stats")
    requested.run_results([SimulationJob(workload="astar", policy="lru",
                                         num_accesses=NUM_ACCESSES)])
    assert requested.last_strategy["reason"] == "requested"


def test_planned_strategy(monkeypatch):
    import repro.sim.parallel as parallel_module
    assert planned_strategy(jobs=1) == "serial"
    assert planned_strategy(executor="serial") == "serial"
    assert planned_strategy(jobs=4, executor="thread") == "thread"
    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 1)
    assert planned_strategy(jobs=4, executor="auto") == "serial"
    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 8)
    assert planned_strategy(jobs=4, executor="auto") == "process"
    with pytest.raises(ValueError):
        planned_strategy(executor="bogus")


# ----------------------------------------------------------------------
# perf report comparison
# ----------------------------------------------------------------------
def test_compare_reports_prints_deltas():
    old = {"revision": "aaaa111", "params": {"num_accesses": 4000},
           "timings": [{"name": "replay_full/astar/lru", "seconds": 0.2},
                       {"name": "store/verify", "seconds": 0.1}]}
    new = {"revision": "bbbb222", "params": {"num_accesses": 4000},
           "timings": [{"name": "replay_full/astar/lru", "seconds": 0.1},
                       {"name": "batch_rollout/batch_9cells",
                        "seconds": 0.05}]}
    rendered = compare_reports(old, new)
    assert "aaaa111 -> bbbb222" in rendered
    assert "replay_full/astar/lru" in rendered
    assert "x0.50" in rendered
    assert "only in old: store/verify" in rendered
    assert "only in new: batch_rollout/batch_9cells" in rendered
