"""End-to-end CacheMind facade: routing, grounding, memoisation, batching."""

import pytest

from repro import CacheMind
from repro.core.pipeline import SimulationCache

from conftest import SESSION_KWARGS


# ----------------------------------------------------------------------
# the flagship acceptance path
# ----------------------------------------------------------------------
def test_ask_miss_rate_returns_grounded_answer(session):
    answer = session.ask("What is the miss rate of lru on astar?")
    assert answer.category == "miss_rate"
    assert answer.retriever == "sieve"
    assert answer.grounded
    assert answer.retrieval_quality == "high"
    assert isinstance(answer.value, float) and 0.0 <= answer.value <= 1.0
    assert "miss rate" in answer.text.lower()
    assert answer.sources == ["astar_evictions_lru"]
    assert answer.backend == "gpt-4o"
    assert answer.evidence


def test_hit_rate_question_reports_hit_rate(session):
    miss = session.ask("What is the miss rate of lru on astar?")
    hit = session.ask("What is the hit rate of lru on astar?")
    assert "hit rate" in hit.text
    # Both answers ground in the same entry; at least the true values are
    # complements (allow for the backend's deliberate corruption on one).
    if miss.grounded and hit.grounded:
        assert abs((miss.value + hit.value) - 1.0) < 1e-9


def test_highest_hit_rate_picks_lowest_miss_rate(fresh_cache):
    from repro.llm.simulated import SimulatedLLM

    class PerfectBackend(SimulatedLLM):
        def check(self, skill, key, quality=1.0):
            return True

    session = CacheMind(simulation_cache=fresh_cache,
                        backend=PerfectBackend("gpt-4o"), **SESSION_KWARGS)
    answer = session.ask("Which policy has the highest hit rate on astar?")
    assert answer.value == "belady"
    assert "hit rate" in answer.text
    # Unmapped superlatives ("best") must also mean the best policy.
    best = session.ask("Which policy has the best hit rate on astar?")
    assert best.value == "belady"
    best_miss = session.ask("Which policy has the best miss rate on astar?")
    assert best_miss.value == "belady"
    worst = session.ask("Which policy has the worst hit rate on astar?")
    assert worst.value == "lru"
    worst_overall = session.ask("Which policy performs worst on astar?")
    assert worst_overall.value == "lru"
    # Hit-count phrasing must rank by hits, not miss rate.
    most_hits = session.ask("Which policy has the most hits on astar?")
    assert most_hits.value == "belady"
    fewest_hits = session.ask("Which policy has the fewest hits on astar?")
    assert fewest_hits.value == "lru"
    most_misses = session.ask("Which policy has the most misses on astar?")
    assert most_misses.value == "lru"


def test_ranger_policy_comparison_direction(session):
    # 'best' must map to the lowest miss rate inside Ranger's generated code.
    intent = session.parser.parse("Which policy is best on astar?")
    ranger = session.retriever("ranger")
    context = ranger.retrieve(intent)
    if "best_policy" in context.facts:
        per_policy = context.facts["per_policy"]
        assert context.facts["best_policy"] == min(per_policy,
                                                   key=per_policy.get)


def test_unknown_policy_question_not_misgrounded(session):
    # 'plru' is a known alias but absent from this session's database; the
    # answer must not confidently report another policy's rate.
    answer = session.ask("What is the miss rate of plru on astar?")
    assert answer.admitted_unknown or not answer.grounded


def test_database_built_once_across_asks(session):
    session.ask("What is the miss rate of lru on astar?")
    first_sim_count = session.simulation_cache.misses
    session.ask("What is the miss rate of belady on astar?")
    session.ask("Which policy has the lowest miss rate on lbm?")
    assert session.database_builds == 1
    # No additional simulations ran for the follow-up questions.
    assert session.simulation_cache.misses == first_sim_count


def test_database_entries_shared_across_sessions(fresh_cache):
    first = CacheMind(simulation_cache=fresh_cache, **SESSION_KWARGS)
    second = CacheMind(simulation_cache=fresh_cache, **SESSION_KWARGS)
    key = "astar_evictions_lru"
    # Derived entries (table + statistics) are memoised, not just the
    # simulation results, so repeat builds are near-free.
    assert first.database.entries[key] is second.database.entries[key]


def test_retriever_alias_reuses_instance(session):
    embedding = session.retriever("embedding")
    assert session.retriever("baseline") is embedding
    assert session.retriever("llamaindex") is embedding


def test_simulation_memoiser_hit_on_second_session(fresh_cache):
    first = CacheMind(simulation_cache=fresh_cache, **SESSION_KWARGS)
    first.ask("What is the miss rate of lru on astar?")
    simulated = fresh_cache.misses
    assert simulated == len(SESSION_KWARGS["workloads"]) * len(
        SESSION_KWARGS["policies"])
    assert fresh_cache.hits == 0

    second = CacheMind(simulation_cache=fresh_cache, **SESSION_KWARGS)
    second.ask("What is the miss rate of belady on lbm?")
    # Every (workload, policy, config) pair was served from the memoiser.
    assert fresh_cache.hits == simulated
    assert fresh_cache.misses == simulated


# ----------------------------------------------------------------------
# one smoke test per routing branch
# ----------------------------------------------------------------------
def test_routing_sieve_branch(session):
    answer = session.ask(
        "Which policy has the lowest miss rate on astar?")
    assert answer.category == "policy_comparison"
    assert answer.retriever == "sieve"
    assert answer.value in SESSION_KWARGS["policies"]
    assert answer.extra["per_policy"]


def test_routing_ranger_branch(session):
    answer = session.ask("How many accesses are there in astar under lru?")
    assert answer.category == "count"
    assert answer.retriever == "ranger"
    assert isinstance(answer.value, int)


def test_routing_ranger_code_generation(session):
    answer = session.ask("Write code to compute the miss rate for lbm.")
    assert answer.category == "code_generation"
    assert answer.retriever == "ranger"
    assert answer.generated_code
    assert "result" in answer.generated_code


def test_routing_embedding_fallback(session):
    answer = session.ask(
        "How does increasing associativity affect conflict misses?")
    assert answer.category == "concept"
    assert answer.retriever == "embedding"
    assert answer.text


def test_routing_workload_analysis(session):
    # Also regression-covers parse_metadata_string on sentence-final
    # correlation values ("... is 0.86.") reached via the summaries stage.
    answer = session.ask("Which workload has the highest miss rate under lru?")
    assert answer.category == "workload_analysis"
    assert answer.retriever == "sieve"
    assert len(answer.evidence) == len(set(answer.evidence))


def test_forced_retriever_overrides_routing(session):
    answer = session.ask("What is the miss rate of lru on astar?",
                         retriever="embedding")
    assert answer.retriever == "embedding"


def test_trick_question_premise_violation(session):
    # PC 0xdead00 does not exist in any workload trace.
    answer = session.ask(
        "What is the miss rate for PC 0xdead00 in astar under lru?")
    assert answer.rejected_premise or answer.extra.get("missed_trick")


# ----------------------------------------------------------------------
# batch APIs
# ----------------------------------------------------------------------
def test_ask_many_shares_one_build(session):
    answers = session.ask_many([
        "What is the miss rate of lru on astar?",
        "What is the miss rate of belady on lbm?",
        "How many accesses are there in astar under lru?",
    ])
    assert len(answers) == 3
    assert session.database_builds == 1
    assert [a.question for a in answers] == [a.question for a in session.history[-3:]]


def test_compare_policies(session):
    table = session.compare_policies()
    assert set(table) == set(SESSION_KWARGS["workloads"])
    for row in table.values():
        assert set(row) == set(SESSION_KWARGS["policies"])
        for rate in row.values():
            assert 0.0 <= rate <= 1.0
    assert session.database_builds == 1


def test_best_policy_is_belady_on_astar(session):
    # Belady's OPT cannot lose on misses to LRU.
    name, rate = session.best_policy("astar")
    assert name == "belady"
    assert 0.0 <= rate <= 1.0


def test_compare_policies_rejects_bad_metric(session):
    with pytest.raises(ValueError):
        session.compare_policies(metric="latency")


# ----------------------------------------------------------------------
# construction validation and provenance
# ----------------------------------------------------------------------
def test_empty_construction_rejected():
    with pytest.raises(ValueError):
        CacheMind(workloads=[])
    with pytest.raises(ValueError):
        CacheMind(policies=[])


def test_database_is_lazy(fresh_cache):
    session = CacheMind(simulation_cache=fresh_cache, **SESSION_KWARGS)
    assert session.database_builds == 0
    assert fresh_cache.misses == 0
    assert "not built yet" in session.describe()
    session.ask("What is the miss rate of lru on astar?")
    assert session.database_builds == 1


def test_cache_keys_by_trace_content_not_metadata():
    from repro.sim.config import TINY_CONFIG
    from repro.sim.engine import SimulationEngine
    from repro.workloads.generator import generate_trace

    cache = SimulationCache()
    engine = SimulationEngine(config=TINY_CONFIG)
    trace = generate_trace("astar", num_accesses=300, seed=0)
    cache.get_or_run(engine, trace, "lru")
    # A different trace sharing workload/length/seed metadata must not be
    # served the first trace's result.
    other = generate_trace("astar", num_accesses=300, seed=1)
    other.seed = trace.seed
    cache.get_or_run(engine, other, "lru")
    assert cache.misses == 2 and cache.hits == 0
    # And the identical content is still a hit.
    again = generate_trace("astar", num_accesses=300, seed=0)
    cache.get_or_run(engine, again, "lru")
    assert cache.hits == 1


def test_simulation_cache_lru_bound():
    from repro.sim.config import TINY_CONFIG
    from repro.sim.engine import SimulationEngine

    cache = SimulationCache(max_entries=2)
    engine = SimulationEngine(config=TINY_CONFIG)
    for seed in range(4):
        trace, _ = cache.get_trace("astar", 200, seed)
        cache.get_or_run(engine, trace, "lru")
    # The bound holds: older entries were evicted, not accumulated.
    assert len(cache) <= 2
    assert cache.stats()["traces"] <= 2
    assert cache.misses == 4


def test_unknown_names_raise_registry_error():
    from repro.errors import UnknownNameError
    from repro.workloads.generator import get_workload

    with pytest.raises(UnknownNameError):
        get_workload("not-a-workload")
    # Still a KeyError subclass for backward compatibility.
    assert issubclass(UnknownNameError, KeyError)


def test_ranger_uses_session_backend(fresh_cache):
    session = CacheMind(simulation_cache=fresh_cache, backend="gpt-3.5-turbo",
                        **SESSION_KWARGS)
    session.ask("How many accesses are there in astar under lru?")
    assert session.retriever("ranger").code_llm is session.backend


def test_custom_backend_factory_without_seed_param(fresh_cache):
    from repro.llm.backend import register_backend
    from repro.llm.simulated import SimulatedLLM

    @register_backend("no-seed-backend")
    def make():
        return SimulatedLLM("gpt-4o")

    # CacheMind always offers seed=/prompting=; the factory must not blow up.
    session = CacheMind(simulation_cache=fresh_cache,
                        backend="no-seed-backend", **SESSION_KWARGS)
    assert session.backend.name == "gpt-4o"


def test_address_scoped_miss_rate_not_given_trace_rate(session):
    # The whole-trace rate must not be confidently attributed to one address.
    answer = session.ask(
        "What is the miss rate of address 0xaff500406999 in astar under lru?")
    assert answer.admitted_unknown or not answer.grounded


def test_general_question_not_marked_grounded(session):
    answer = session.ask("Why do caches use replacement policies?")
    assert answer.category == "general"
    assert not answer.grounded or answer.rejected_premise


def test_memory_threads_across_turns(session):
    session.ask("What is the miss rate of lru on astar?")
    session.ask("And what about belady?")
    assert len(session.memory) >= 2
    assert len(session.history) == 2
