"""Persistent on-disk store: round-trips, versioning, corruption, CLI.

The store must hand back byte-identical simulation results and tables, refuse
stores written with a foreign schema version, and degrade gracefully (warn,
rebuild) when a record file is corrupt or truncated.
"""

import json
import os
import warnings

import pytest

from repro.cli import main
from repro.core.pipeline import CacheMind, SimulationCache
from repro.errors import StoreVersionError
from repro.sim.config import TINY_CONFIG
from repro.sim.engine import SimulationEngine
from repro.tracedb.database import build_database
from repro.tracedb.store import (
    STORE_SCHEMA_VERSION,
    StoreCorruptionWarning,
    TraceStore,
    entry_key,
    simulation_key,
)
from repro.workloads.generator import generate_trace

WORKLOADS = ["astar", "lbm"]
POLICIES = ["lru", "belady"]
NUM_ACCESSES = 300

SESSION_KWARGS = dict(workloads=WORKLOADS, policies=POLICIES,
                      num_accesses=NUM_ACCESSES, config=TINY_CONFIG, seed=0)


def _raise_on_unpickle():
    raise AssertionError("payload was unpickled by a header-only path")


def _session(store_dir):
    cache = SimulationCache(store=TraceStore(str(store_dir)))
    return CacheMind(simulation_cache=cache, **SESSION_KWARGS), cache


def _table_bytes(entry):
    return json.dumps(list(entry.data_frame.iter_rows()), sort_keys=True,
                      default=str).encode("utf-8")


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
def test_save_load_round_trip_is_byte_identical(tmp_path):
    cold_session, cold_cache = _session(tmp_path)
    cold_db = cold_session.database
    assert cold_cache.misses == len(WORKLOADS) * len(POLICIES)

    warm_session, warm_cache = _session(tmp_path)
    warm_db = warm_session.database
    assert warm_cache.misses == 0
    assert warm_cache.store_hits == len(WORKLOADS) * len(POLICIES)

    assert cold_db.keys() == warm_db.keys()
    for key in cold_db.keys():
        cold_entry, warm_entry = cold_db.entry(key), warm_db.entry(key)
        assert _table_bytes(cold_entry) == _table_bytes(warm_entry)
        assert cold_entry.metadata == warm_entry.metadata
        assert cold_entry.statistics == warm_entry.statistics
        cold_result, warm_result = cold_entry.result, warm_entry.result
        assert (cold_result.llc_stats.as_tuple()
                == warm_result.llc_stats.as_tuple())
        assert cold_result.timing.ipc == warm_result.timing.ipc
        assert cold_result.timing.cycles == warm_result.timing.cycles
        assert cold_result.wrong_evictions == warm_result.wrong_evictions


def test_warm_session_answers_with_zero_simulations(tmp_path):
    cold_session, _cache = _session(tmp_path)
    _ = cold_session.database

    warm_session, warm_cache = _session(tmp_path)
    answer = warm_session.ask("What is the miss rate of lru on astar?")
    assert answer.grounded
    assert warm_cache.misses == 0, "warm session must not simulate"


def test_result_round_trip_via_get_or_run(tmp_path):
    store = TraceStore(str(tmp_path))
    trace = generate_trace("astar", NUM_ACCESSES, seed=0)
    engine = SimulationEngine(config=TINY_CONFIG)

    cold_cache = SimulationCache(store=store)
    cold = cold_cache.get_or_run(engine, trace, "lru")
    assert cold_cache.misses == 1

    warm_cache = SimulationCache(store=store)
    warm = warm_cache.get_or_run(engine, trace, "lru")
    assert warm_cache.misses == 0 and warm_cache.store_hits == 1
    assert warm.llc_stats.as_tuple() == cold.llc_stats.as_tuple()
    assert warm.timing.ipc == cold.timing.ipc
    # Row views rebuild from the shipped columnar log.
    assert len(warm.records) == len(cold.records)
    assert warm.records[10].__dict__ == cold.records[10].__dict__


def test_builds_persist_results_so_simulate_is_warm_too(tmp_path):
    cold_session, _ = _session(tmp_path)
    _ = cold_session.database  # persists entry- AND result- records

    warm_session, warm_cache = _session(tmp_path)
    result = warm_session.simulate("astar", "lru")
    assert warm_cache.misses == 0 and warm_cache.store_hits == 1
    assert result.llc_stats.accesses == NUM_ACCESSES


def test_build_database_with_store_loads_instead_of_simulating(tmp_path):
    first = build_database(workloads=WORKLOADS, policies=POLICIES,
                           num_accesses=NUM_ACCESSES, config=TINY_CONFIG,
                           store=str(tmp_path))
    store = TraceStore(str(tmp_path))
    assert store.info()["entries"] == len(WORKLOADS) * len(POLICIES)
    second = build_database(workloads=WORKLOADS, policies=POLICIES,
                            num_accesses=NUM_ACCESSES, config=TINY_CONFIG,
                            store=store)
    loads_before = store.loads
    assert loads_before >= len(WORKLOADS) * len(POLICIES)
    for key in first.keys():
        assert _table_bytes(first.entry(key)) == _table_bytes(second.entry(key))


def test_store_keys_follow_trace_content(tmp_path):
    store = TraceStore(str(tmp_path))
    engine = SimulationEngine(config=TINY_CONFIG)
    trace = generate_trace("astar", NUM_ACCESSES, seed=0)
    other = generate_trace("astar", NUM_ACCESSES, seed=1)
    other.seed = trace.seed  # same metadata, different content
    assert (simulation_key(engine, trace, "lru")
            != simulation_key(engine, other, "lru"))
    assert (entry_key(engine, trace, "lru", "d")
            != entry_key(engine, trace, "lru", "e"))


# ----------------------------------------------------------------------
# versioning
# ----------------------------------------------------------------------
def test_foreign_schema_version_is_refused(tmp_path):
    TraceStore(str(tmp_path))  # writes a current-version manifest
    manifest = tmp_path / "manifest.json"
    manifest.write_text(json.dumps({"schema": STORE_SCHEMA_VERSION + 1}))
    with pytest.raises(StoreVersionError):
        TraceStore(str(tmp_path))


def test_corrupt_manifest_is_quarantined_and_rebuilt(tmp_path):
    store = TraceStore(str(tmp_path))
    store.save("entry", ("k",), {"x": 1})
    (tmp_path / "manifest.json").write_text("{not json")
    with pytest.warns(StoreCorruptionWarning):
        healed = TraceStore(str(tmp_path))
    # The bad manifest is preserved aside, a fresh one is stamped, and the
    # surviving record is still readable.
    assert "manifest.json" in healed.quarantined_files()
    assert healed.load("entry", ("k",)) == {"x": 1}
    assert json.loads((tmp_path / "manifest.json").read_text())["schema"] \
        == STORE_SCHEMA_VERSION


def test_corrupt_manifest_over_foreign_records_is_refused(tmp_path):
    """Manifest self-healing must not adopt another build's records."""
    store = TraceStore(str(tmp_path))
    store.save("entry", ("k",), {"x": 1})
    # Re-open pretending to be a future build whose records use a bumped
    # schema (the manifest still matches at open time).
    future = TraceStore(str(tmp_path))
    future.schema_version = STORE_SCHEMA_VERSION + 1
    future.save("entry", ("other",), {"x": 2})
    (tmp_path / "manifest.json").write_text("{not json")
    with pytest.raises(StoreVersionError):
        TraceStore(str(tmp_path))


def test_foreign_record_schema_is_a_miss(tmp_path):
    store = TraceStore(str(tmp_path))
    store.save("entry", ("k",), {"x": 1})
    # Re-open pretending to be a future version that kept the manifest
    # format but bumped record layouts.
    future = TraceStore(str(tmp_path))
    future.schema_version = STORE_SCHEMA_VERSION + 1
    with pytest.warns(StoreCorruptionWarning):
        assert future.load("entry", ("k",)) is None


# ----------------------------------------------------------------------
# corruption
# ----------------------------------------------------------------------
def _record_paths(store_dir):
    """Every record file under the sharded ``objects/`` tree."""
    objects = os.path.join(str(store_dir), "objects")
    paths = []
    for shard in sorted(os.listdir(objects)):
        shard_dir = os.path.join(objects, shard)
        paths.extend(os.path.join(shard_dir, name)
                     for name in os.listdir(shard_dir)
                     if name.endswith(".pkl"))
    assert paths
    return sorted(paths, key=os.path.basename)


def _first_record_path(store_dir):
    return _record_paths(store_dir)[0]


def _truncate(path):
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(data[: len(data) // 2])


def test_truncated_entry_warns_and_recovers_from_result_record(tmp_path):
    cold_session, _ = _session(tmp_path)
    _ = cold_session.database
    # Builds persist entry- and result- records; damage one entry record.
    _truncate(_first_record_path(str(tmp_path)))  # sorted: entry-* first

    warm_session, warm_cache = _session(tmp_path)
    with pytest.warns(StoreCorruptionWarning):
        warm_db = warm_session.database
    # The surviving result record covers the damaged entry: the table is
    # re-derived but nothing re-simulates.
    assert warm_cache.misses == 0
    assert len(warm_db) == len(WORKLOADS) * len(POLICIES)


def test_fully_corrupt_store_warns_and_resimulates(tmp_path):
    cold_session, _ = _session(tmp_path)
    _ = cold_session.database
    for path in _record_paths(tmp_path):
        _truncate(path)

    warm_session, warm_cache = _session(tmp_path)
    with pytest.warns(StoreCorruptionWarning):
        warm_db = warm_session.database
    # Nothing usable on disk: every pair re-simulates...
    assert warm_cache.misses == len(WORKLOADS) * len(POLICIES)
    assert len(warm_db) == len(WORKLOADS) * len(POLICIES)
    # ...and the rebuild overwrote the bad records: next session is warm.
    third_session, third_cache = _session(tmp_path)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        _ = third_session.database
    assert third_cache.misses == 0


def test_garbage_bytes_record_is_a_miss(tmp_path):
    store = TraceStore(str(tmp_path))
    store.save("entry", ("k",), {"x": 1})
    path = _first_record_path(str(tmp_path))
    with open(path, "wb") as handle:
        handle.write(b"definitely not a store record")
    with pytest.warns(StoreCorruptionWarning):
        assert store.load("entry", ("k",)) is None


def test_gc_removes_corrupt_and_prunes(tmp_path):
    store = TraceStore(str(tmp_path))
    for i in range(4):
        store.save("entry", (i,), {"i": i})
    # Corrupt one record, and strand a fake interrupted atomic write.
    path = _first_record_path(str(tmp_path))
    with open(path, "wb") as handle:
        handle.write(b"junk")
    (tmp_path / "orphaned123.tmp").write_bytes(b"half-written")
    # temp_max_age=0: in the test every temp counts as stale; the
    # default age gate is what protects concurrent writers in production.
    removed = store.gc(max_records=2, temp_max_age=0.0)
    assert len(removed["corrupt"]) == 1
    assert len(removed["pruned"]) == 1
    assert removed["temp"] == ["orphaned123.tmp"]
    assert len(store) == 2
    assert store.clear() == 2
    assert len(store) == 0


def test_gc_recovers_a_foreign_schema_store(tmp_path):
    store = TraceStore(str(tmp_path))
    store.save("entry", ("k",), {"x": 1})
    (tmp_path / "manifest.json").write_text(
        json.dumps({"schema": STORE_SCHEMA_VERSION + 1}))
    # Strict opening refuses...
    with pytest.raises(StoreVersionError):
        TraceStore(str(tmp_path))
    # ...but gc (non-strict) cleans up and re-stamps the manifest, after
    # which the store opens normally again.  The v1 record survives since
    # its header carries the current schema.
    removed = TraceStore(str(tmp_path), strict=False).gc()
    assert removed["schema"] == []
    reopened = TraceStore(str(tmp_path))
    assert reopened.load("entry", ("k",)) == {"x": 1}


def test_info_is_header_only(tmp_path):
    """``info`` must not unpickle payloads (maintenance stays cheap)."""
    store = TraceStore(str(tmp_path))

    class Unloadable:
        def __reduce__(self):
            return (_raise_on_unpickle, ())

    store.save("entry", ("k",), Unloadable())
    info = store.info()
    assert info["entries"] == 1 and info["unreadable"] == 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_store_cli_save_load_info_gc(tmp_path, capsys):
    store_dir = str(tmp_path / "cli_store")
    base = ["--workloads", "astar", "--policies", "lru,belady",
            "--accesses", "300", "--config", "tiny"]
    assert main(["store", "save", "--dir", store_dir] + base) == 0
    # Each pair persists an entry record plus a bare result record.
    assert "4 record(s) written" in capsys.readouterr().out

    assert main(["store", "load", "--dir", store_dir, "--expect-warm"]
                + base) == 0
    assert "2 from store, 0 simulated" in capsys.readouterr().out

    assert main(["store", "info", "--dir", store_dir]) == 0
    out = capsys.readouterr().out
    assert "schema version: 1" in out
    assert "2 entries" in out and "2 results" in out

    assert main(["store", "gc", "--dir", store_dir,
                 "--max-records", "1"]) == 0
    assert "removed 3 record(s)" in capsys.readouterr().out


def test_store_cli_read_only_commands_reject_missing_dir(tmp_path, capsys):
    missing = tmp_path / "nope"
    assert main(["store", "info", "--dir", str(missing)]) == 1
    assert "no trace store" in capsys.readouterr().err
    assert main(["store", "gc", "--dir", str(missing)]) == 1
    # A typo'd path must not leave an empty store behind.
    assert not missing.exists()


def test_store_cli_expect_warm_fails_on_cold_store(tmp_path, capsys):
    store_dir = str(tmp_path / "cold_store")
    base = ["--workloads", "astar", "--policies", "lru",
            "--accesses", "300", "--config", "tiny"]
    assert main(["store", "load", "--dir", store_dir, "--expect-warm"]
                + base) == 1
    assert "expected a warm start" in capsys.readouterr().err


def test_store_cli_reports_version_mismatch_and_gc_recovers(tmp_path, capsys):
    store_dir = tmp_path / "versioned"
    TraceStore(str(store_dir))
    (store_dir / "manifest.json").write_text(json.dumps({"schema": 999}))
    assert main(["store", "info", "--dir", str(store_dir)]) == 1
    assert "store gc" in capsys.readouterr().err
    # The recovery path the error message recommends must actually work.
    assert main(["store", "gc", "--dir", str(store_dir)]) == 0
    capsys.readouterr()
    assert main(["store", "info", "--dir", str(store_dir)]) == 0


def test_conflicting_store_dir_is_rejected(tmp_path):
    cache = SimulationCache(store=TraceStore(str(tmp_path / "a")))
    CacheMind(simulation_cache=cache, store_dir=str(tmp_path / "a"),
              **SESSION_KWARGS)  # same directory: fine
    with pytest.raises(ValueError):
        CacheMind(simulation_cache=cache, store_dir=str(tmp_path / "b"),
                  **SESSION_KWARGS)
