"""Retriever and backend plugin registries."""

import pytest

from repro.core.query import QueryIntent
from repro.llm.backend import (
    LLMBackend,
    available_backend_names,
    get_backend,
    register_backend,
)
from repro.llm.simulated import SimulatedLLM
from repro.retrieval.base import (
    Retriever,
    available_retrievers,
    get_retriever,
    register_retriever,
)
from repro.retrieval.context import RetrievedContext
from repro.tracedb.database import TraceDatabase


# ----------------------------------------------------------------------
# retrievers
# ----------------------------------------------------------------------
def test_builtin_retrievers_registered():
    assert set(available_retrievers()) >= {"sieve", "ranger", "embedding"}


def test_retriever_aliases_resolve(session):
    retriever = get_retriever("llamaindex", session.database)
    assert retriever.name == "embedding"
    assert get_retriever("baseline", session.database).name == "embedding"


def test_retriever_instance_passthrough(session):
    instance = get_retriever("sieve", session.database)
    assert get_retriever(instance, session.database) is instance


def test_unknown_retriever_raises():
    with pytest.raises(KeyError):
        get_retriever("nope", TraceDatabase())


def test_custom_retriever_plugs_in(session):
    @register_retriever
    class NullRetriever(Retriever):
        name = "null-test"

        def retrieve(self, intent: QueryIntent) -> RetrievedContext:
            context = RetrievedContext(retriever_name=self.name,
                                       text="nothing")
            context.finalise_quality(intent)
            return context

    assert "null-test" in available_retrievers()
    answer = session.ask("What is the miss rate of lru on astar?",
                         retriever="null-test")
    assert answer.retriever == "null-test"


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
def test_profile_names_are_registered_backends():
    names = available_backend_names()
    for expected in ("simulated", "gpt-4o", "gpt-4o-mini", "gpt-3.5-turbo",
                     "o3", "finetuned-4o-mini"):
        assert expected in names


def test_get_backend_by_profile_name():
    backend = get_backend("gpt-4o-mini", seed=3)
    assert isinstance(backend, SimulatedLLM)
    assert backend.name == "gpt-4o-mini"
    assert backend.seed == 3


def test_backend_instance_passthrough():
    instance = SimulatedLLM("o3")
    assert get_backend(instance) is instance


def test_unknown_backend_raises():
    with pytest.raises(KeyError):
        get_backend("gpt-99")


def test_get_backend_strict_kwargs_by_default():
    # Typos and stray kwargs must raise unless lenient resolution is asked for.
    with pytest.raises(TypeError):
        get_backend("gpt-4o", sed=5)
    with pytest.raises(TypeError):
        get_backend("gpt-4o", name="o3")
    assert get_backend("gpt-4o", lenient=True, seed=2).seed == 2


def test_custom_backend_factory():
    @register_backend("test-backend")
    def make(**kwargs):
        return SimulatedLLM("gpt-4o", **kwargs)

    backend = get_backend("test-backend", seed=7)
    assert isinstance(backend, LLMBackend)
    assert backend.seed == 7
