"""Trace ingestion: parsers, registry adapter, store manifest, CLI, serving.

The acceptance contract: a trace imported once (``trace import``) is
referenceable **by name** in ``ExperimentSpec``, ``CacheMind.ask`` and a
remote serve request, and direct-parse vs store-warm runs produce
byte-identical results.
"""

import gzip
import json
import os
import struct

import pytest

from repro.cli import main
from repro.core.experiment import ExperimentRunner, ExperimentSpec
from repro.core.pipeline import CacheMind, SimulationCache
from repro.errors import DuplicateNameError, TraceParseError, UnknownNameError
from repro.sim.config import TINY_CONFIG
from repro.tracedb.store import TraceStore
from repro.workloads.generator import (
    available_workloads,
    generate_trace,
    get_workload,
    unregister_workload,
    workload_info,
    workload_kind,
)
from repro.workloads.ingest import (
    CHAMPSIM_RECORD,
    IngestedWorkload,
    default_trace_name,
    detect_format,
    ensure_store_traces_registered,
    import_trace_file,
    ingested_description,
    parse_champsim_trace,
    parse_text_trace,
    parse_trace_file,
    register_trace,
    register_trace_file,
    trace_fingerprint_hex,
    write_champsim_trace,
    write_text_trace,
)
from repro.workloads.trace import (
    FLAG_PREFETCH,
    FLAG_WRITE,
    MemoryTrace,
    TraceAccess,
)


@pytest.fixture()
def registry_guard():
    """Unregister every name a test registers, even on failure."""
    names = []
    yield names
    for name in names:
        unregister_workload(name)


def small_trace(name="ingtest", accesses=64, seed=5):
    trace = generate_trace("astar", num_accesses=accesses, seed=seed)
    return MemoryTrace(workload=name, seed=0,
                       columns=tuple(trace._copied_column(index)
                                     for index in range(4)))


# ----------------------------------------------------------------------
# parsers: round trips
# ----------------------------------------------------------------------
def test_text_round_trip(tmp_path):
    trace = small_trace()
    path = write_text_trace(trace, str(tmp_path / "t.csv"))
    parsed = parse_text_trace(path, workload=trace.workload)
    assert parsed.fingerprint() == trace.fingerprint()
    assert list(parsed.columns()[3]) == list(trace.columns()[3])


def test_text_round_trip_gzip(tmp_path):
    trace = small_trace()
    path = write_text_trace(trace, str(tmp_path / "t.csv.gz"))
    with open(path, "rb") as handle:
        assert handle.read(2) == b"\x1f\x8b"
    parsed = parse_trace_file(path, workload=trace.workload)
    assert parsed.fingerprint() == trace.fingerprint()


def test_champsim_round_trip(tmp_path):
    trace = small_trace()
    path = write_champsim_trace(trace, str(tmp_path / "t.champsim"))
    assert os.path.getsize(path) == len(trace) * CHAMPSIM_RECORD.size
    parsed = parse_champsim_trace(path, workload=trace.workload)
    assert parsed.fingerprint() == trace.fingerprint()


def test_champsim_round_trip_gzip_preserves_prefetch(tmp_path):
    path = str(tmp_path / "t.bin.gz")
    with gzip.open(path, "wb") as handle:
        handle.write(CHAMPSIM_RECORD.pack(0x400, 0x1000, 4, FLAG_WRITE))
        handle.write(CHAMPSIM_RECORD.pack(0x404, 0x1040, 7, FLAG_PREFETCH))
    parsed = parse_trace_file(path)
    assert list(parsed.columns()[2]) == [FLAG_WRITE, FLAG_PREFETCH]
    assert list(parsed.columns()[3]) == [4, 7]


def test_text_parser_accepts_hex_comments_and_default_gap(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("# header comment\n"
                    "\n"
                    "0x400100, 0x7f0000000000, 0, 12  # trailing comment\n"
                    "4194564,140737488355328,1\n")
    parsed = parse_text_trace(str(path))
    assert len(parsed) == 2
    assert list(parsed.columns()[0]) == [0x400100, 4194564]
    assert list(parsed.columns()[2]) == [0, FLAG_WRITE]
    assert list(parsed.columns()[3]) == [12, 4]  # default gap is 4


def test_default_trace_name_sanitises(tmp_path):
    assert default_trace_name("/x/y/spec mcf!.csv.gz") == "spec_mcf_"
    assert default_trace_name("trace.champsim") == "trace"


# ----------------------------------------------------------------------
# parsers: malformed input reporting
# ----------------------------------------------------------------------
@pytest.mark.parametrize("line,fragment", [
    ("0x400100,0x1000", "3-4 fields"),
    ("0x400100,0x1000,0,4,9", "3-4 fields"),
    ("zzz,0x1000,0", "not a decimal or 0x-hex"),
    ("0x400100,0x1000,2", "is_write must be 0 or 1"),
    ("0x400100,99999999999999999999999,0", "out of range"),
])
def test_text_parser_errors_name_the_line(tmp_path, line, fragment):
    path = tmp_path / "bad.csv"
    path.write_text("# fine\n0x1,0x2,0\n" + line + "\n")
    with pytest.raises(TraceParseError) as error:
        parse_text_trace(str(path))
    assert fragment in str(error.value)
    assert f"{path}:3" in str(error.value)


def test_text_parser_rejects_binary_content(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_bytes(b"\xff\xfe\x00\x01binary\n")
    with pytest.raises(TraceParseError, match="not UTF-8"):
        parse_text_trace(str(path))


def test_text_parser_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("# only a comment\n")
    with pytest.raises(TraceParseError, match="no accesses"):
        parse_text_trace(str(path))


def test_champsim_parser_rejects_truncated_file(tmp_path):
    path = tmp_path / "bad.champsim"
    payload = CHAMPSIM_RECORD.pack(0x400, 0x1000, 4, 0)
    path.write_bytes(payload + payload[:7])
    with pytest.raises(TraceParseError) as error:
        parse_champsim_trace(str(path))
    assert "truncated record #1" in str(error.value)
    assert "7 trailing" in str(error.value)


def test_champsim_parser_rejects_unknown_flag_bits(tmp_path):
    path = tmp_path / "bad.champsim"
    path.write_bytes(struct.pack("<QQIB3x", 0x400, 0x1000, 4, 0x84))
    with pytest.raises(TraceParseError) as error:
        parse_champsim_trace(str(path))
    assert "record #0" in str(error.value)
    assert "0x84" in str(error.value)


def test_champsim_parser_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.champsim"
    path.write_bytes(b"")
    with pytest.raises(TraceParseError, match="empty trace file"):
        parse_champsim_trace(str(path))


def test_detect_format_and_writer_guards(tmp_path):
    assert detect_format("a/b.csv.gz") == "text"
    assert detect_format("a/b.bin") == "champsim"
    with pytest.raises(ValueError, match="cannot infer trace format"):
        detect_format("a/b.unknown")
    prefetching = MemoryTrace(workload="p", accesses=[
        TraceAccess(pc=1, address=64, is_write=False, is_prefetch=True)])
    with pytest.raises(ValueError, match="cannot represent prefetch"):
        write_text_trace(prefetching, str(tmp_path / "p.csv"))
    wide_gap = MemoryTrace(workload="g", accesses=[
        TraceAccess(pc=1, address=64, is_write=False,
                    instructions_since_last=2 ** 33)])
    with pytest.raises(ValueError, match="u32"):
        write_champsim_trace(wide_gap, str(tmp_path / "g.bin"))


# ----------------------------------------------------------------------
# the registry adapter
# ----------------------------------------------------------------------
def test_register_trace_makes_a_named_workload(tmp_path, registry_guard):
    trace = small_trace("ing_adapter")
    name = register_trace(trace)
    registry_guard.append(name)
    assert name == "ing_adapter"
    assert name in available_workloads()
    assert workload_kind(name) == "ingested"
    info = workload_info(name)
    assert info["description"] == ingested_description(
        name, len(trace), trace_fingerprint_hex(trace))

    generator = get_workload(name)
    assert isinstance(generator, IngestedWorkload)
    # seed and num_accesses are explicitly ignored: same full replay.
    assert get_workload(name, seed=99) is generator
    replay = generator.generate(7)
    assert len(replay) == len(trace)
    assert replay.fingerprint() == trace.fingerprint()
    with pytest.raises(ValueError, match="num_accesses must be positive"):
        generator.generate(0)


def test_register_trace_rename_copies_columns(registry_guard):
    trace = small_trace("ing_original")
    name = register_trace(trace, name="ing_renamed")
    registry_guard.append(name)
    assert name == "ing_renamed"
    # The source trace keeps its own name and is not mutated.
    assert trace.workload == "ing_original"
    replay = get_workload(name).generate()
    assert replay.workload == "ing_renamed"
    assert list(replay.columns()[1]) == list(trace.columns()[1])


def test_register_trace_duplicate_semantics(registry_guard):
    trace = small_trace("ing_dup")
    registry_guard.append(register_trace(trace))
    # Same name, same content: idempotent no-op.
    assert register_trace(small_trace("ing_dup")) == "ing_dup"
    # Same name, different content: a hard error, never a silent shadow.
    other = small_trace("ing_dup", accesses=32, seed=9)
    with pytest.raises(DuplicateNameError, match="different content"):
        register_trace(other)
    # Colliding with a synthetic generator is also an error.
    synthetic_clash = small_trace("astar")
    with pytest.raises(DuplicateNameError):
        register_trace(synthetic_clash)


def test_register_trace_file(tmp_path, registry_guard):
    trace = small_trace("ing_file")
    path = write_text_trace(trace, str(tmp_path / "ing_file.csv"))
    name = register_trace_file(path)
    registry_guard.append(name)
    assert name == "ing_file"
    assert get_workload(name).generate().fingerprint() == trace.fingerprint()


def test_ingested_workload_detects_changed_source(tmp_path, registry_guard):
    trace = small_trace("ing_changed")
    entry = IngestedWorkload(name="ing_changed", loader=lambda: trace,
                             accesses=len(trace), fingerprint_hex="deadbeef")
    with pytest.raises(ValueError, match="source changed"):
        entry.generate()


# ----------------------------------------------------------------------
# store-backed manifest
# ----------------------------------------------------------------------
def test_import_trace_file_persists_and_lists(tmp_path, registry_guard):
    trace = small_trace("ing_store")
    path = write_champsim_trace(trace, str(tmp_path / "ing_store.champsim"))
    store = TraceStore(str(tmp_path / "store"))
    name, meta = import_trace_file(store, path)
    registry_guard.append(name)
    assert meta["format"] == "champsim"
    assert meta["accesses"] == len(trace)
    assert meta["fingerprint"] == trace_fingerprint_hex(trace)
    rows = store.trace_manifest()
    assert [row["name"] for row in rows] == ["ing_store"]
    assert store.info()["traces"] == 1
    loaded = store.load_trace(meta["fingerprint"])
    assert loaded.fingerprint() == trace.fingerprint()
    assert loaded.description == ingested_description(
        name, len(trace), meta["fingerprint"])


def test_ensure_store_traces_registered_fresh_process(tmp_path,
                                                      registry_guard):
    trace = small_trace("ing_warm")
    path = write_text_trace(trace, str(tmp_path / "ing_warm.csv"))
    store = TraceStore(str(tmp_path / "store"))
    name, _meta = import_trace_file(store, path)
    # Model a fresh process: the registry forgets, the store remembers.
    unregister_workload(name)
    with pytest.raises(UnknownNameError):
        get_workload(name)
    registered = ensure_store_traces_registered(store)
    registry_guard.append(name)
    assert registered == [name]
    # Second call is an idempotent no-op.
    assert ensure_store_traces_registered(store) == []
    replay = get_workload(name).generate()
    assert replay.fingerprint() == trace.fingerprint()


def test_trace_manifest_is_header_only(tmp_path, registry_guard):
    trace = small_trace("ing_headers")
    path = write_text_trace(trace, str(tmp_path / "t.csv"))
    store = TraceStore(str(tmp_path / "store"))
    name, _ = import_trace_file(store, path)
    registry_guard.append(name)
    loads_before = store.loads
    assert store.trace_manifest()
    assert store.loads == loads_before  # no payload was decompressed


# ----------------------------------------------------------------------
# acceptance: named everywhere, byte-identical warm runs
# ----------------------------------------------------------------------
def _experiment_over(name, cache):
    spec = ExperimentSpec(workloads=[name, "astar"],
                          policies=["lru", "belady"],
                          configs=[TINY_CONFIG], num_accesses=(400,))
    runner = ExperimentRunner(simulation_cache=cache)
    return runner.run(spec)


def test_experiment_direct_vs_store_warm_byte_identical(tmp_path,
                                                        registry_guard):
    trace = small_trace("ing_exp")
    path = write_text_trace(trace, str(tmp_path / "ing_exp.csv"))
    store_dir = str(tmp_path / "store")
    name, _ = import_trace_file(TraceStore(store_dir), path)
    registry_guard.append(name)

    # Direct parse, no store attached.
    direct = _experiment_over(name, SimulationCache())
    assert direct.counters["simulations_run"] == 4

    # Fresh-process model: registry wiped, store-backed cache re-registers
    # from the manifest inside ExperimentRunner.run.
    unregister_workload(name)
    cold = _experiment_over(name, SimulationCache(store=store_dir))
    warm = _experiment_over(name, SimulationCache(store=store_dir))
    assert warm.counters["simulations_run"] == 0
    assert warm.counters["store_hits"] == 4

    for other in (cold, warm):
        assert other.columns == direct.columns
        payload_a = json.dumps({k: v for k, v in direct.to_dict().items()
                                if k not in ("counters", "timings")},
                               sort_keys=True)
        payload_b = json.dumps({k: v for k, v in other.to_dict().items()
                                if k not in ("counters", "timings")},
                               sort_keys=True)
        assert payload_a == payload_b


def test_cachemind_ask_over_ingested_workload(tmp_path, registry_guard):
    trace = small_trace("ing_ask", accesses=200)
    path = write_text_trace(trace, str(tmp_path / "ing_ask.csv"))
    store_dir = str(tmp_path / "store")
    name, _ = import_trace_file(TraceStore(store_dir), path)
    registry_guard.append(name)
    unregister_workload(name)  # fresh-process model

    session = CacheMind(workloads=[name], policies=["lru", "belady"],
                        num_accesses=500, config=TINY_CONFIG,
                        simulation_cache=SimulationCache(store=store_dir))
    answer = session.ask(f"What is the miss rate of lru on {name}?")
    assert answer.category == "miss_rate"
    assert name in answer.question
    entry = session.database.get(name, "lru")
    assert entry.statistics.total_accesses == len(trace)


def test_serve_request_names_ingested_workload(tmp_path, registry_guard):
    from repro.serve import CacheMindServer, CacheMindService, RemoteClient

    trace = small_trace("ing_serve", accesses=200)
    path = write_text_trace(trace, str(tmp_path / "ing_serve.csv"))
    store_dir = str(tmp_path / "store")
    name, _ = import_trace_file(TraceStore(store_dir), path)
    registry_guard.append(name)
    unregister_workload(name)  # fresh-process model

    session = CacheMind(workloads=[name, "astar"],
                        policies=["lru", "belady"], num_accesses=400,
                        config=TINY_CONFIG,
                        simulation_cache=SimulationCache(store=store_dir))
    with CacheMindServer(CacheMindService(session=session),
                         host="127.0.0.1", port=0).start() as server:
        host, port = server.address
        with RemoteClient(host, port) as client:
            response = client.ask(
                f"What is the miss rate of lru on {name}?")
    assert response.answer.category == "miss_rate"
    assert name in response.answer.question


# ----------------------------------------------------------------------
# CLI: trace import / list / info
# ----------------------------------------------------------------------
def _write_cli_trace(tmp_path, name="clitrace"):
    trace = small_trace(name, accesses=32)
    return write_text_trace(trace, str(tmp_path / f"{name}.csv")), trace


def test_cli_trace_import_list_info(tmp_path, capsys, registry_guard):
    path, trace = _write_cli_trace(tmp_path)
    store_dir = str(tmp_path / "store")
    assert main(["trace", "import", path, "--dir", store_dir]) == 0
    registry_guard.append("clitrace")
    out = capsys.readouterr().out
    assert "imported 'clitrace'" in out
    assert trace_fingerprint_hex(trace) in out

    assert main(["trace", "list", "--dir", store_dir]) == 0
    out = capsys.readouterr().out
    assert "clitrace" in out and "32 accesses" in out

    assert main(["trace", "info", "clitrace", "--dir", store_dir]) == 0
    out = capsys.readouterr().out
    assert "ingested" in out and path in out
    # Fingerprint prefixes resolve too.
    prefix = trace_fingerprint_hex(trace)[:4]
    assert main(["trace", "info", prefix, "--dir", store_dir]) == 0


def test_cli_trace_import_rejects_malformed(tmp_path, capsys):
    bad = tmp_path / "bad.csv"
    bad.write_text("not,a,trace,line,at,all\n")
    code = main(["trace", "import", str(bad),
                 "--dir", str(tmp_path / "store")])
    assert code == 1
    err = capsys.readouterr().err
    assert "error:" in err and "bad.csv:1" in err


def test_cli_trace_readonly_commands_require_existing_store(tmp_path,
                                                            capsys):
    missing = str(tmp_path / "nope")
    assert main(["trace", "list", "--dir", missing]) == 1
    assert "no trace store" in capsys.readouterr().err
    assert main(["trace", "info", "x", "--dir", missing]) == 1
    assert not os.path.exists(missing)  # read-only paths create nothing


def test_cli_trace_info_unknown_name(tmp_path, capsys, registry_guard):
    path, _trace = _write_cli_trace(tmp_path, "cliinfo")
    store_dir = str(tmp_path / "store")
    assert main(["trace", "import", path, "--dir", store_dir]) == 0
    registry_guard.append("cliinfo")
    capsys.readouterr()
    assert main(["trace", "info", "missing", "--dir", store_dir]) == 1
    assert "no imported trace matches" in capsys.readouterr().err


def test_cli_simulate_list_shows_kinds_and_store_traces(tmp_path, capsys,
                                                        registry_guard):
    path, _trace = _write_cli_trace(tmp_path, "clilist")
    store_dir = str(tmp_path / "store")
    assert main(["trace", "import", path, "--dir", store_dir]) == 0
    registry_guard.append("clilist")
    unregister_workload("clilist")  # fresh-process model
    capsys.readouterr()
    assert main(["simulate", "--list", "--store-dir", store_dir]) == 0
    out = capsys.readouterr().out
    assert "[synthetic]" in out and "[ingested " in out
    assert "clilist" in out
    # Every workload line carries a description, not just a name.
    assert "grid path finding" in out


def test_cli_simulate_runs_ingested_workload(tmp_path, capsys,
                                             registry_guard):
    path, trace = _write_cli_trace(tmp_path, "clisim")
    store_dir = str(tmp_path / "store")
    assert main(["trace", "import", path, "--dir", store_dir]) == 0
    registry_guard.append("clisim")
    unregister_workload("clisim")  # fresh-process model
    capsys.readouterr()
    code = main(["simulate", "--workload", "clisim", "--policy", "lru",
                 "--config", "tiny", "--store-dir", store_dir])
    assert code == 0
    out = capsys.readouterr().out
    assert "clisim under lru" in out
    assert f"{len(trace)} LLC accesses" in out
