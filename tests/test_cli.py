"""CLI subcommands exercised through repro.cli.main."""

import pytest

from repro.cli import main

COMMON = ["--workloads", "astar", "--policies", "lru,belady",
          "--accesses", "400", "--config", "tiny"]


def test_simulate_list(capsys):
    assert main(["simulate", "--list"]) == 0
    out = capsys.readouterr().out
    assert "astar" in out and "lru" in out
    assert "sieve" in out and "gpt-4o" in out


def test_simulate_runs(capsys):
    code = main(["simulate", *COMMON, "--workload", "astar",
                 "--policy", "lru"])
    assert code == 0
    out = capsys.readouterr().out
    assert "astar under lru" in out
    assert "miss rate" in out


def test_ask_runs(capsys):
    code = main(["ask", *COMMON, "What is the miss rate of lru on astar?"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Q: What is the miss rate of lru on astar?" in out
    assert "A:" in out
    assert "retriever=sieve" in out


def test_ask_json_prints_full_response(capsys):
    import json

    code = main(["ask", *COMMON, "--json",
                 "What is the miss rate of lru on astar?"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["question_type"] == "miss_rate"
    assert payload["route"] == "sieve"
    assert payload["answer"]["grounded"] is True
    assert payload["answer"]["value"] == pytest.approx(payload["answer"]["value"])
    assert set(payload["timings"]) == {"plan", "simulate", "batch_simulate",
                                       "retrieve", "generate", "total"}
    assert payload["batch_unique_jobs"] == 2  # 1 workload x 2 policies


def test_ask_remote_unreachable_fails_cleanly(capsys):
    code = main(["ask", "--remote", "127.0.0.1:1",
                 "What is the miss rate of lru on astar?"])
    assert code == 1
    assert "remote ask failed" in capsys.readouterr().err


def test_bench_runs(capsys):
    code = main(["bench", *COMMON])
    assert code == 0
    out = capsys.readouterr().out
    assert "miss_rate per (workload, policy)" in out
    assert "astar" in out
    assert "*" in out


def test_unknown_workload_fails_cleanly(capsys):
    code = main(["simulate", *COMMON, "--workload", "not-a-workload"])
    assert code == 1
    assert "error" in capsys.readouterr().err


def test_missing_subcommand_exits():
    with pytest.raises(SystemExit):
        main([])
