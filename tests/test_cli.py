"""CLI subcommands exercised through repro.cli.main."""

import pytest

from repro.cli import main

COMMON = ["--workloads", "astar", "--policies", "lru,belady",
          "--accesses", "400", "--config", "tiny"]


def test_simulate_list(capsys):
    assert main(["simulate", "--list"]) == 0
    out = capsys.readouterr().out
    assert "astar" in out and "lru" in out
    assert "sieve" in out and "gpt-4o" in out


def test_simulate_runs(capsys):
    code = main(["simulate", *COMMON, "--workload", "astar",
                 "--policy", "lru"])
    assert code == 0
    out = capsys.readouterr().out
    assert "astar under lru" in out
    assert "miss rate" in out


def test_ask_runs(capsys):
    code = main(["ask", *COMMON, "What is the miss rate of lru on astar?"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Q: What is the miss rate of lru on astar?" in out
    assert "A:" in out
    assert "retriever=sieve" in out


def test_bench_runs(capsys):
    code = main(["bench", *COMMON])
    assert code == 0
    out = capsys.readouterr().out
    assert "miss_rate per (workload, policy)" in out
    assert "astar" in out
    assert "*" in out


def test_unknown_workload_fails_cleanly(capsys):
    code = main(["simulate", *COMMON, "--workload", "not-a-workload"])
    assert code == 1
    assert "error" in capsys.readouterr().err


def test_missing_subcommand_exits():
    with pytest.raises(SystemExit):
        main([])
