"""Stats-only replay equivalence with the full-detail path.

The fast path may skip snapshots and bookkeeping, but it must make exactly
the same caching decisions: identical hit/miss/eviction/bypass counts, miss
taxonomy, per-set rates and timing for every registered policy on every
bundled workload.
"""

import pytest

from repro.policies.base import available_policies
from repro.sim.cache import Cache, CacheStats
from repro.sim.config import TINY_CONFIG
from repro.sim.engine import SimulationEngine
from repro.tracedb.schema import records_to_table
from repro.workloads.generator import available_workloads, generate_trace

NUM_ACCESSES = 300

_TRACES = {}


def _trace(workload):
    if workload not in _TRACES:
        _TRACES[workload] = generate_trace(workload, NUM_ACCESSES, seed=0)
    return _TRACES[workload]


def _counters(stats):
    return (stats.accesses, stats.hits, stats.misses, stats.evictions,
            stats.bypasses, stats.compulsory_misses, stats.capacity_misses,
            stats.conflict_misses)


@pytest.mark.parametrize("policy", available_policies())
@pytest.mark.parametrize("workload", available_workloads())
def test_stats_replay_matches_full_replay(workload, policy):
    trace = _trace(workload)
    full = SimulationEngine(config=TINY_CONFIG).run(trace, policy)
    stats = SimulationEngine(config=TINY_CONFIG, detail="stats").run(trace, policy)
    assert _counters(full.llc_stats) == _counters(stats.llc_stats)
    assert full.set_hit_rates == stats.set_hit_rates
    assert full.timing.instructions == stats.timing.instructions
    assert full.timing.cycles == stats.timing.cycles
    assert full.timing.ipc == stats.timing.ipc
    assert full.timing.accesses_by_level == stats.timing.accesses_by_level
    assert full.timing.stalls_by_level == stats.timing.stalls_by_level


@pytest.mark.parametrize("policy", available_policies())
@pytest.mark.parametrize("workload", available_workloads())
def test_columnar_table_identical_to_row_materialised_table(workload, policy):
    """The columnar spine's table path is byte-identical to the object path.

    ``AccessLog.to_table`` (columns built directly from the engine's arrays)
    must produce exactly the table the legacy path gets by materialising
    ``AccessRecord`` rows and transposing them.
    """
    result = SimulationEngine(config=TINY_CONFIG).run(_trace(workload), policy)
    columnar = result.log.to_table()
    row_based = records_to_table(result.log.to_records())
    assert columnar.columns == row_based.columns
    assert columnar.to_dict() == row_based.to_dict()


@pytest.mark.parametrize("policy", ["lru", "ship", "belady"])
def test_stats_replay_matches_full_replay_hierarchy_mode(policy):
    trace = _trace("lbm")
    full = SimulationEngine(config=TINY_CONFIG, mode="hierarchy").run(trace, policy)
    stats = SimulationEngine(config=TINY_CONFIG, mode="hierarchy",
                             detail="stats").run(trace, policy)
    assert _counters(full.llc_stats) == _counters(stats.llc_stats)
    assert full.timing.cycles == stats.timing.cycles
    assert full.timing.ipc == stats.timing.ipc


def test_stats_detail_skips_records():
    result = SimulationEngine(config=TINY_CONFIG, detail="stats").run(
        _trace("astar"), "lru")
    assert result.detail == "stats"
    assert result.records == []
    # Full-detail replay still produces one record per access.
    full = SimulationEngine(config=TINY_CONFIG).run(_trace("astar"), "lru")
    assert full.detail == "full"
    assert len(full.records) == NUM_ACCESSES


def test_invalid_detail_rejected():
    with pytest.raises(ValueError):
        SimulationEngine(config=TINY_CONFIG, detail="verbose")
    with pytest.raises(ValueError):
        Cache(TINY_CONFIG.llc, detail="verbose")


def test_set_hit_rates_is_lazy_and_cached():
    result = SimulationEngine(config=TINY_CONFIG, detail="stats").run(
        _trace("astar"), "lru")
    assert "set_hit_rates" not in result.__dict__  # not derived yet
    rates = result.set_hit_rates
    assert rates and all(0.0 <= rate <= 1.0 for rate in rates.values())
    assert result.__dict__["set_hit_rates"] is rates  # cached after first read


def test_per_set_counters_are_preallocated_lists():
    stats = CacheStats.for_sets(4)
    assert stats.per_set_accesses == [0, 0, 0, 0]
    assert stats.per_set_hits == [0, 0, 0, 0]
    assert stats.set_hit_rates() == {}  # nothing accessed yet
    stats.per_set_accesses[1] = 4
    stats.per_set_hits[1] = 3
    assert stats.set_hit_rates() == {1: 0.75}


def test_cache_lookup_uses_tag_maps_consistently():
    cache = Cache(TINY_CONFIG.llc)
    cache.access(pc=0x400000, byte_address=0x1000, is_write=False, access_index=0)
    assert cache.contains(0x1000)
    way, line = cache.lookup(cache.block_address(0x1000))
    assert way is not None and line.block_address == cache.block_address(0x1000)
    assert cache.occupancy() == 1
    cache.flush()
    assert not cache.contains(0x1000)
    assert cache.occupancy() == 0
