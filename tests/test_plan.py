"""The request/plan/execute API: planning, batch dedup, serialization."""

import json

import pytest

from repro import CacheMind
from repro.core.answer import Answer, AskResponse
from repro.core.pipeline import SimulationCache
from repro.core.plan import (
    AskRequest,
    PlannedJob,
    QueryPlan,
    as_request,
    merge_jobs,
)
from repro.errors import UnknownNameError

from conftest import SESSION_KWARGS


# ----------------------------------------------------------------------
# planning is a pure description
# ----------------------------------------------------------------------
def test_plan_runs_nothing(session, fresh_cache):
    plan = session.plan("What is the miss rate of lru on astar?")
    assert session.database_builds == 0
    assert fresh_cache.stats()["misses"] == 0
    assert plan.route == "sieve"
    assert plan.intent.question_type == "miss_rate"
    assert plan.question == "What is the miss rate of lru on astar?"


def test_plan_names_the_session_matrix(session):
    plan = session.plan("Which policy has the lowest miss rate on astar?")
    expected_pairs = {(workload, policy)
                      for workload in SESSION_KWARGS["workloads"]
                      for policy in SESSION_KWARGS["policies"]}
    assert {(job.workload, job.policy) for job in plan.jobs} == expected_pairs
    for job in plan.jobs:
        assert job.num_accesses == SESSION_KWARGS["num_accesses"]
        assert job.seed == SESSION_KWARGS["seed"]
        assert job.config_name == SESSION_KWARGS["config"].name
        assert job.detail == "full"


def test_plan_routes_match_intent_routing(session):
    for question, route in [
        ("What is the miss rate of lru on astar?", "sieve"),
        ("How many accesses are there in astar under lru?", "ranger"),
        ("Why do caches use replacement policies?", "embedding"),
    ]:
        assert session.plan(question).route == route


def test_plan_resolves_retriever_aliases(session):
    plan = session.plan(AskRequest(
        question="What is the miss rate of lru on astar?",
        retriever="baseline"))
    assert plan.route == "embedding"


def test_plan_rejects_unknown_retriever(session):
    with pytest.raises(UnknownNameError):
        session.plan(AskRequest(question="anything", retriever=""))


def test_plan_describe_and_dict(session):
    plan = session.plan("What is the miss rate of lru on astar?")
    assert "sieve" in plan.describe()
    payload = plan.to_dict()
    assert payload["route"] == "sieve"
    assert payload["question_type"] == "miss_rate"
    assert len(payload["jobs"]) == len(plan.jobs)
    json.dumps(payload)  # wire-clean


# ----------------------------------------------------------------------
# batch merging / simulation dedup (the batching contract)
# ----------------------------------------------------------------------
def test_merge_jobs_dedupes_across_plans(session):
    plans = [session.plan(question) for question in [
        "What is the miss rate of lru on astar?",
        "What is the miss rate of belady on astar?",
        "What is the miss rate of lru on lbm?",
    ]]
    merged = merge_jobs(plans)
    matrix = len(SESSION_KWARGS["workloads"]) * len(SESSION_KWARGS["policies"])
    assert len(merged) == matrix
    assert sum(len(plan.jobs) for plan in plans) == 3 * matrix


def test_ask_many_duplicate_questions_simulate_once():
    # N questions over the same (workload, policy) pair must run exactly ONE
    # simulation: the planner merges the batch's duplicate jobs.
    cache = SimulationCache()
    session = CacheMind(workloads=["astar"], policies=["lru"],
                        num_accesses=SESSION_KWARGS["num_accesses"],
                        config=SESSION_KWARGS["config"],
                        simulation_cache=cache)
    questions = ["What is the miss rate of lru on astar?"] * 5
    answers = session.ask_many(questions)
    assert len(answers) == 5
    stats = cache.stats()
    assert stats["misses"] == 1          # exactly one simulation ran
    assert session.database_builds == 1
    # Planner probe: the merged batch named exactly one unique job.
    assert session.planner.last_merged_job_count == 1


def test_ask_response_carries_batch_dedup_counts(session):
    questions = ["What is the miss rate of lru on astar?",
                 "What is the miss rate of belady on lbm?"]
    responses = session.ask_request_many(questions)
    matrix = len(SESSION_KWARGS["workloads"]) * len(SESSION_KWARGS["policies"])
    for response in responses:
        assert response.planned_jobs == matrix
        assert response.batch_unique_jobs == matrix
        # Two plans x matrix jobs, merged down to one matrix.
        assert response.batch_duplicate_jobs == matrix
        assert response.simulations_run == matrix  # cold cache: all ran
        # The shared simulation pass is amortised per request.
        assert (response.timings["simulate"] * len(responses)
                == pytest.approx(response.timings["batch_simulate"]))
    # A follow-up batch is fully warm.
    warm = session.ask_request_many(questions)
    assert all(response.simulations_run == 0 for response in warm)


def test_ask_request_response_envelope(session):
    response = session.ask_request("What is the miss rate of lru on astar?")
    assert isinstance(response, AskResponse)
    assert response.route == "sieve"
    assert response.question_type == "miss_rate"
    assert "type=miss_rate" in response.intent
    assert set(response.timings) == {"plan", "simulate", "batch_simulate",
                                     "retrieve", "generate", "total"}
    assert all(value >= 0.0 for value in response.timings.values())
    assert response.answer.grounded


def test_legacy_ask_and_ask_request_agree(fresh_cache):
    question = "Which policy has the lowest miss rate on astar?"
    legacy = CacheMind(simulation_cache=SimulationCache(), **SESSION_KWARGS)
    planned = CacheMind(simulation_cache=fresh_cache, **SESSION_KWARGS)
    assert (legacy.ask(question).to_dict()
            == planned.ask_request(question).answer.to_dict())


def test_execute_rejects_foreign_config_jobs(session):
    foreign = PlannedJob(workload="astar", policy="lru",
                         num_accesses=SESSION_KWARGS["num_accesses"],
                         seed=0, config_name="paper", mode="llc_only")
    with pytest.raises(ValueError):
        session._execute_planned_jobs([foreign])
    # The same validation fires through execute() even once the database
    # is warm — a hand-built plan's jobs are never silently skipped.
    session.ask("What is the miss rate of lru on astar?")
    plan = session.plan("What is the miss rate of lru on astar?")
    plan.jobs = (foreign,)
    with pytest.raises(ValueError):
        session.execute(plan)


def test_execute_honours_hand_built_jobs_on_warm_session(session, fresh_cache):
    # Once the database exists, a plan naming a not-yet-simulated job
    # (different seed) must still run it, not silently reuse the database.
    session.ask("What is the miss rate of lru on astar?")
    misses_before = fresh_cache.stats()["misses"]
    plan = session.plan("What is the miss rate of lru on astar?")
    plan.jobs = (PlannedJob(workload="astar", policy="lru",
                            num_accesses=SESSION_KWARGS["num_accesses"],
                            seed=7, config_name=SESSION_KWARGS["config"].name,
                            mode="llc_only"),)
    session.execute(plan)
    assert fresh_cache.stats()["misses"] == misses_before + 1


# ----------------------------------------------------------------------
# wire serialization round-trips
# ----------------------------------------------------------------------
def test_ask_request_roundtrip():
    request = AskRequest(question="What is the miss rate of lru on astar?",
                         retriever="sieve", request_id="req-9")
    rebuilt = AskRequest.from_dict(json.loads(json.dumps(request.to_dict())))
    assert rebuilt == request


def test_ask_request_with_instance_refuses_serialization(session):
    instance = session.retriever("embedding")
    with pytest.raises(ValueError):
        AskRequest(question="q", retriever=instance).to_dict()


def test_planned_job_roundtrip():
    job = PlannedJob(workload="astar", policy="lru", num_accesses=500,
                     seed=3, config_name="tiny", mode="llc_only",
                     detail="stats")
    rebuilt = PlannedJob.from_dict(json.loads(json.dumps(job.to_dict())))
    assert rebuilt == job and rebuilt.key == job.key


def test_as_request_coercion():
    assert as_request("q").question == "q"
    request = AskRequest(question="q", retriever="sieve")
    # A ready-made request passes through; the extra retriever is ignored.
    assert as_request(request, retriever="ranger") is request


def test_answer_roundtrip_preserves_every_field(session):
    # Cover grounded, hallucination-prone, premise-rejection and code paths.
    questions = [
        "What is the miss rate of lru on astar?",
        "What is the miss rate for PC 0xdead00 in astar under lru?",
        "Write code to compute the miss rate for lbm.",
        "Which policy has the lowest miss rate on astar?",
        "Why do caches use replacement policies?",
    ]
    for answer in session.ask_many(questions):
        payload = json.loads(json.dumps(answer.to_dict()))
        rebuilt = Answer.from_dict(payload)
        assert rebuilt == answer
        assert rebuilt.grounded == answer.grounded
        assert rebuilt.rejected_premise == answer.rejected_premise
        assert rebuilt.admitted_unknown == answer.admitted_unknown
        assert rebuilt.extra == answer.extra


def test_ask_response_roundtrip_is_byte_identical(session):
    response = session.ask_request("What is the miss rate of lru on astar?")
    wire = json.dumps(response.to_dict(), sort_keys=True)
    rebuilt = AskResponse.from_dict(json.loads(wire))
    assert rebuilt == response
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == wire


def test_answer_from_dict_ignores_unknown_keys():
    payload = Answer(question="q", text="a").to_dict()
    payload["added_in_a_future_version"] = 1
    assert Answer.from_dict(payload).question == "q"


# ----------------------------------------------------------------------
# sim-layer dedup (duplicate jobs reaching the simulator run once)
# ----------------------------------------------------------------------
def test_parallel_simulator_dedupes_duplicate_jobs(monkeypatch):
    import repro.sim.parallel as parallel_module
    from repro.sim.config import TINY_CONFIG
    from repro.sim.parallel import ParallelSimulator, SimulationJob

    calls = []
    real_execute = parallel_module._execute_job

    def counting_execute(payload):
        calls.append(payload)
        return real_execute(payload)

    monkeypatch.setattr(parallel_module, "_execute_job", counting_execute)
    simulator = ParallelSimulator(jobs=1, executor="serial",
                                  config=TINY_CONFIG)
    job = SimulationJob(workload="astar", policy="lru", num_accesses=300)
    results = simulator.run_results([job, job, job])
    assert len(calls) == 1
    assert len(results) == 3
    assert results[0] is results[1] is results[2]
