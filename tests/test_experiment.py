"""The declarative experiment API: specs, compile/dedup, execution,
equivalence with single-config sessions, persistence, serving and CLI."""

import json

import pytest

from repro import CacheMind, ExperimentSpec, TINY_CONFIG
from repro.core.experiment import (
    AXES,
    ExperimentResult,
    ExperimentRunner,
    as_experiment_spec,
)
from repro.core.pipeline import SimulationCache
from repro.errors import UnknownNameError
from repro.sim.config import HierarchyConfig
from repro.sim.engine import SimulationEngine
from repro.tracedb.store import TraceStore
from repro.workloads.generator import generate_trace

from conftest import SESSION_KWARGS

#: a second tiny hierarchy so grids genuinely span configurations.
TINY_2X = TINY_CONFIG.scaled_llc(2 * TINY_CONFIG.llc.size_bytes,
                                 name="tiny-llc2x")

#: the shared grid used by most tests: 2 workloads x 2 policies x 2 configs.
GRID_KWARGS = dict(
    workloads=["astar", "lbm"],
    policies=["lru", "belady"],
    configs=[TINY_CONFIG, TINY_2X],
    num_accesses=400,
)


def small_spec(**overrides) -> ExperimentSpec:
    options = dict(GRID_KWARGS)
    options.update(overrides)
    return ExperimentSpec(**options)


# ----------------------------------------------------------------------
# spec construction, serialisation, fingerprints
# ----------------------------------------------------------------------
def test_spec_coerces_scalars_and_names():
    spec = ExperimentSpec(workloads="astar", policies="lru",
                          configs="tiny", num_accesses=400, seeds=1,
                          details="stats", metrics="ipc")
    assert spec.workloads == ("astar",)
    assert spec.policies == ("lru",)
    assert spec.configs == (TINY_CONFIG,)
    assert spec.num_accesses == (400,)
    assert spec.seeds == (1,)
    assert spec.details == ("stats",)
    assert spec.metrics == ("ipc",)


@pytest.mark.parametrize("overrides", [
    dict(workloads=[]),
    dict(policies=[]),
    dict(configs=[]),
    dict(mode="warp"),
    dict(details=["verbose"]),
    dict(metrics=["latency"]),
    dict(num_accesses=[0]),
])
def test_spec_rejects_invalid_axes(overrides):
    with pytest.raises((ValueError, UnknownNameError)):
        small_spec(**overrides)


def test_spec_rejects_conflicting_config_names():
    conflicting = TINY_CONFIG.scaled_llc(8 * TINY_CONFIG.llc.size_bytes)
    with pytest.raises(ValueError, match="share the name"):
        small_spec(configs=[TINY_CONFIG, conflicting])


def test_spec_roundtrip_is_lossless_and_fingerprint_stable():
    spec = small_spec(details=["full", "stats"], seeds=[0, 1],
                      baseline_policy="lru")
    rebuilt = ExperimentSpec.from_dict(spec.to_dict())
    assert rebuilt.to_dict() == spec.to_dict()
    assert rebuilt.configs == spec.configs
    assert rebuilt.fingerprint() == spec.fingerprint()
    # any changed axis — including a config parameter — changes the hash
    assert small_spec().fingerprint() != spec.fingerprint()
    assert (small_spec(configs=[TINY_CONFIG]).fingerprint()
            != small_spec().fingerprint())


def test_as_experiment_spec_accepts_wire_payloads():
    spec = small_spec()
    assert as_experiment_spec(spec) is spec
    assert as_experiment_spec(spec.to_dict()).fingerprint() == spec.fingerprint()
    with pytest.raises(TypeError):
        as_experiment_spec(42)


def test_config_roundtrip_through_dict():
    rebuilt = HierarchyConfig.from_dict(TINY_2X.to_dict())
    assert rebuilt == TINY_2X
    assert rebuilt.llc.size_bytes == 2 * TINY_CONFIG.llc.size_bytes


# ----------------------------------------------------------------------
# compile: grid flattening and dedup
# ----------------------------------------------------------------------
def test_compile_names_every_cell():
    spec = small_spec(details=["full", "stats"], seeds=[0, 1])
    plan = spec.compile()
    assert plan.planned_cells == 2 * 2 * 2 * 2 * 2
    assert plan.unique_jobs == plan.planned_cells  # no duplicates
    assert plan.duplicate_jobs == 0


def test_compile_merges_duplicate_cells():
    # A duplicated workload and a baseline policy already in the list both
    # produce duplicate cells; the merge collapses them.
    spec = small_spec(workloads=["astar", "lbm", "astar"],
                      baseline_policy="lru")
    plan = spec.compile()
    assert plan.planned_cells == 3 * 2 * 2
    assert plan.unique_jobs == 2 * 2 * 2
    assert plan.duplicate_jobs == 4


def test_baseline_policy_joins_the_grid_once():
    spec = small_spec(policies=["belady"], baseline_policy="lru")
    assert spec.grid_policies == ("belady", "lru")
    spec = small_spec(policies=["lru", "belady"], baseline_policy="lru")
    assert spec.grid_policies == ("lru", "belady")


# ----------------------------------------------------------------------
# execution: dedup, counters, equivalence
# ----------------------------------------------------------------------
def test_duplicate_cells_simulate_exactly_once(fresh_cache):
    spec = small_spec(workloads=["astar", "lbm", "astar"],
                      baseline_policy="lru")
    result = ExperimentRunner(simulation_cache=fresh_cache).run(spec)
    assert result.counters["duplicate_jobs"] == 4
    assert result.counters["simulations_run"] == result.counters["unique_jobs"]
    assert fresh_cache.stats()["misses"] == result.counters["unique_jobs"]
    assert len(result) == result.counters["unique_jobs"]


def test_full_cells_match_fresh_single_config_sessions(fresh_cache):
    """Every cell of a multi-config grid equals a fresh single-config
    session's compare_policies value for that (workload, policy, config)."""
    result = ExperimentRunner(simulation_cache=fresh_cache).run(small_spec())
    for config in (TINY_CONFIG, TINY_2X):
        session = CacheMind(workloads=GRID_KWARGS["workloads"],
                            policies=GRID_KWARGS["policies"],
                            num_accesses=400, config=config,
                            simulation_cache=SimulationCache())
        for metric in ("miss_rate", "hit_rate", "ipc"):
            table = session.compare_policies(metric=metric)
            for workload, row in table.items():
                for policy, expected in row.items():
                    cell = result.value(metric, workload=workload,
                                        policy=policy, config=config.name)
                    assert cell == expected, (metric, workload, policy,
                                              config.name)


def test_stats_cells_match_stats_engine_runs(fresh_cache):
    spec = small_spec(workloads=["astar"], policies=["lru"],
                      configs=[TINY_CONFIG], details=["stats"])
    result = ExperimentRunner(simulation_cache=fresh_cache).run(spec)
    engine = SimulationEngine(config=TINY_CONFIG, detail="stats")
    reference = engine.run(generate_trace("astar", 400, 0), "lru")
    assert result.value("miss_rate", workload="astar",
                        policy="lru") == reference.llc_stats.miss_rate
    assert result.value("ipc", workload="astar", policy="lru") == reference.ipc


def test_parallel_execution_is_byte_identical(fresh_cache):
    spec = small_spec(details=["full", "stats"])
    serial = ExperimentRunner(simulation_cache=fresh_cache).run(spec)
    parallel = ExperimentRunner(simulation_cache=SimulationCache(), jobs=2,
                                executor="thread").run(spec)
    assert serial.columns == parallel.columns


def test_runner_rejects_unknown_names(fresh_cache):
    runner = ExperimentRunner(simulation_cache=fresh_cache)
    with pytest.raises(UnknownNameError):
        runner.run(small_spec(policies=["lru", "nope"]))
    with pytest.raises(UnknownNameError):
        runner.run(small_spec(workloads=["astar", "nope"]))
    assert fresh_cache.stats()["misses"] == 0  # validated before simulating


def test_progress_callback_sees_every_cell(fresh_cache):
    seen = []
    spec = small_spec()
    ExperimentRunner(simulation_cache=fresh_cache).run(
        spec, progress=lambda done, total: seen.append((done, total)))
    total = spec.compile().unique_jobs
    # (0, total) announces the grid size before the first cell runs
    assert seen == [(index, total) for index in range(total + 1)]


# ----------------------------------------------------------------------
# result table: roundtrip and derived views
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def grid_result():
    spec = small_spec(details=["full", "stats"], baseline_policy="lru")
    return ExperimentRunner(simulation_cache=SimulationCache()).run(spec)


def test_result_roundtrip_is_lossless(grid_result):
    rebuilt = ExperimentResult.from_dict(grid_result.to_dict())
    assert rebuilt.to_dict() == grid_result.to_dict()
    assert json.loads(json.dumps(grid_result.to_dict())) == grid_result.to_dict()


def test_result_rows_carry_every_column(grid_result):
    row = grid_result.rows()[0]
    for axis in AXES:
        assert axis in row
    for metric in ("miss_rate", "hit_rate", "ipc", "accesses", "cycles"):
        assert metric in row


def test_pivot_views(grid_result):
    table = grid_result.pivot("miss_rate",
                              where={"config": "tiny", "detail": "full"})
    assert set(table) == {"astar", "lbm"}
    assert set(table["astar"]) == {"lru", "belady"}
    # configs as columns: policy pinned instead
    by_config = grid_result.pivot("miss_rate", rows="workload", cols="config",
                                  where={"policy": "lru", "detail": "full"})
    assert set(by_config["astar"]) == {"tiny", "tiny-llc2x"}
    # a bigger LLC cannot hurt LRU
    assert by_config["astar"]["tiny-llc2x"] <= by_config["astar"]["tiny"]


def test_pivot_rejects_ambiguous_cells(grid_result):
    with pytest.raises(ValueError, match="ambiguous"):
        grid_result.pivot("miss_rate")  # config and detail still vary


def test_pivot_ambiguity_message_respects_falsy_pins():
    spec = small_spec(configs=[TINY_CONFIG], seeds=[0, 1],
                      details=["full", "stats"])
    result = ExperimentRunner(simulation_cache=SimulationCache()).run(spec)
    # seed pinned to the falsy value 0: only `detail` still varies
    with pytest.raises(ValueError) as excinfo:
        result.pivot("miss_rate", where={"seed": 0})
    assert "detail" in str(excinfo.value)
    assert "seed" not in str(excinfo.value)
    # and pinning it too resolves the ambiguity
    table = result.pivot("miss_rate", where={"seed": 0, "detail": "full"})
    assert set(table) == {"astar", "lbm"}


def test_best_policy_per_cell(grid_result):
    winners = grid_result.best_policy_per_cell("miss_rate")
    assert len(winners) == 2 * 2 * 2  # workloads x configs x details
    assert all(winner["policy"] == "belady" for winner in winners)


def test_delta_vs_baseline(grid_result):
    deltas = grid_result.delta_vs_baseline("miss_rate")
    # one non-baseline policy over 2 workloads x 2 configs x 2 details
    assert len(deltas) == 8
    for row in deltas:
        assert row["policy"] == "belady"
        assert row["delta"] == row["miss_rate"] - row["baseline"]
        assert row["delta"] <= 0  # the oracle cannot lose on misses


def test_delta_requires_a_baseline(fresh_cache):
    result = ExperimentRunner(simulation_cache=fresh_cache).run(
        small_spec(workloads=["astar"], configs=[TINY_CONFIG]))
    with pytest.raises(ValueError, match="baseline"):
        result.delta_vs_baseline("miss_rate")


def test_value_requires_a_unique_cell(grid_result):
    with pytest.raises(ValueError, match="cells"):
        grid_result.value("miss_rate", workload="astar")
    with pytest.raises(ValueError, match="unknown metric"):
        grid_result.value("latency", workload="astar", policy="lru",
                          config="tiny", detail="full")


# ----------------------------------------------------------------------
# store persistence: warm re-runs and saved results
# ----------------------------------------------------------------------
def test_warm_store_rerun_simulates_nothing(tmp_path):
    store_dir = str(tmp_path / "store")
    spec = small_spec()
    cold_cache = SimulationCache(store=store_dir)
    cold = ExperimentRunner(simulation_cache=cold_cache).run(spec)
    assert cold.counters["simulations_run"] == cold.counters["unique_jobs"]
    # brand-new memoiser over the same store: zero simulations
    warm_cache = SimulationCache(store=store_dir)
    warm = ExperimentRunner(simulation_cache=warm_cache).run(spec)
    assert warm.counters["simulations_run"] == 0
    assert warm.counters["store_hits"] == warm.counters["unique_jobs"]
    assert warm.columns == cold.columns


def test_counters_ignore_concurrent_cache_traffic(fresh_cache):
    """Result telemetry counts this run's cells only: foreign simulations
    landing in the shared cache mid-run must not leak into the counters
    (the --expect-warm assertion depends on this)."""
    spec = small_spec(workloads=["astar"], configs=[TINY_CONFIG])
    runner = ExperimentRunner(simulation_cache=fresh_cache)
    runner.run(spec)  # warm the grid

    def foreign_traffic(done, total):
        # an unrelated (workload, policy) simulation on the same cache,
        # fired while the warm sweep is mid-flight
        engine = SimulationEngine(config=TINY_CONFIG)
        fresh_cache.get_or_run(engine, generate_trace("mcf", 300, 0), "lru")

    warm = runner.run(spec, progress=foreign_traffic)
    assert warm.counters["simulations_run"] == 0
    assert warm.counters["cache_hits"] == warm.counters["unique_jobs"]


def test_experiment_fingerprints_read_headers_only(tmp_path):
    store_dir = str(tmp_path / "store")
    spec = small_spec(workloads=["astar"], configs=[TINY_CONFIG])
    ExperimentRunner(simulation_cache=SimulationCache(store=store_dir)).run(
        spec)
    store = TraceStore(store_dir)
    loads_before = store.loads
    assert store.experiment_fingerprints() == [spec.fingerprint()]
    assert store.loads == loads_before  # no payload was decompressed


def test_result_persisted_under_spec_fingerprint(tmp_path):
    store_dir = str(tmp_path / "store")
    spec = small_spec(workloads=["astar"], configs=[TINY_CONFIG])
    result = ExperimentRunner(
        simulation_cache=SimulationCache(store=store_dir)).run(spec)
    store = TraceStore(store_dir)
    loaded = ExperimentResult.load(store, spec.fingerprint())
    assert loaded is not None
    assert loaded.to_dict() == result.to_dict()
    summaries = store.list_experiments()
    assert [summary["fingerprint"] for summary in summaries] == [
        spec.fingerprint()]
    assert summaries[0]["cells"] == len(result)
    assert store.info()["experiments"] == 1
    assert ExperimentResult.load(store, "0" * 32) is None


# ----------------------------------------------------------------------
# the session facade: run_experiment, compare_policies, describe
# ----------------------------------------------------------------------
def test_session_run_experiment_accepts_wire_spec(session):
    spec = small_spec(workloads=["astar"], policies=["lru"],
                      configs=[TINY_CONFIG])
    via_spec = session.run_experiment(spec)
    via_dict = session.run_experiment(spec.to_dict())
    assert via_spec.columns == via_dict.columns
    assert session.experiments_run == 2
    assert session.planner.last_merged_job_count == 1


def test_session_run_experiment_crosses_configs(session):
    """Foreign-config cells route through the cache, not the session
    database (the ask path still guards against them)."""
    result = session.run_experiment(session.experiment_spec(
        configs=[session.config, TINY_2X]))
    assert set(result.columns["config"]) == {"tiny", "tiny-llc2x"}
    assert session.database_builds == 0  # no database build happened


def test_compare_policies_subset_skips_database_build(fresh_cache):
    session = CacheMind(simulation_cache=fresh_cache, **SESSION_KWARGS)
    table = session.compare_policies(workload="astar", policies=["lru"])
    assert set(table) == {"astar"}
    assert set(table["astar"]) == {"lru"}
    # regression: exactly one simulation, and no full database build
    assert fresh_cache.stats()["misses"] == 1
    assert session.database_builds == 0
    assert session._database is None


def test_compare_policies_subset_matches_full_build():
    subset_session = CacheMind(simulation_cache=SimulationCache(),
                               **SESSION_KWARGS)
    full_session = CacheMind(simulation_cache=SimulationCache(),
                             **SESSION_KWARGS)
    full = full_session.compare_policies()  # legacy path: database build
    for metric in ("miss_rate", "hit_rate", "ipc"):
        expected = full_session.compare_policies(workload="astar",
                                                 policies=["lru"],
                                                 metric=metric)
        actual = subset_session.compare_policies(workload="astar",
                                                 policies=["lru"],
                                                 metric=metric)
        assert actual == expected
    assert full_session.database_builds == 1
    assert subset_session.database_builds == 0
    assert full["astar"]["lru"] == subset_session.compare_policies(
        workload="astar", policies=["lru"])["astar"]["lru"]


def test_compare_policies_full_matrix_still_builds_database(session):
    table = session.compare_policies()
    assert set(table) == set(SESSION_KWARGS["workloads"])
    assert session.database_builds == 1


def test_compare_policies_warm_session_reads_database(session):
    _ = session.database
    before = session.simulation_cache.stats()["misses"]
    table = session.compare_policies(workload="astar", policies=["lru"])
    assert session.simulation_cache.stats()["misses"] == before
    assert set(table["astar"]) == {"lru"}


def test_compare_policies_rejects_foreign_names(session):
    with pytest.raises(UnknownNameError):
        session.compare_policies(workload="mcf")  # valid name, not in session
    with pytest.raises(UnknownNameError):
        session.compare_policies(policies=["lru", "ship"])


def test_best_policy_uses_subset_path(fresh_cache):
    session = CacheMind(simulation_cache=fresh_cache, **SESSION_KWARGS)
    name, rate = session.best_policy("astar")
    assert name == "belady"
    assert 0.0 <= rate <= 1.0
    assert session.database_builds == 0
    # only astar's cells simulated (2 policies), not the 2x2 matrix
    assert fresh_cache.stats()["misses"] == 2


def test_describe_reports_store_and_experiment_configs(tmp_path):
    session = CacheMind(store_dir=str(tmp_path / "store"), **SESSION_KWARGS)
    assert "trace store: 0 records" in session.describe()
    session.run_experiment(session.experiment_spec(
        workloads=["astar"], policies=["lru"],
        configs=[session.config, TINY_2X]))
    description = session.describe()
    assert "experiments: 1 run" in description
    assert "tiny-llc2x" in description
    assert "trace store:" in description
    assert "0 records" not in description


def test_simulation_cache_peek_and_put_result(fresh_cache):
    engine = SimulationEngine(config=TINY_CONFIG, detail="stats")
    trace = generate_trace("astar", 400, 0)
    assert fresh_cache.peek_result(engine, trace, "lru") is None
    result = engine.run(trace, "lru")
    fresh_cache.put_result(engine, trace, "lru", result)
    assert fresh_cache.peek_result(engine, trace, "lru") is result
    assert fresh_cache.stats()["misses"] == 1


# ----------------------------------------------------------------------
# serving: the experiment op end to end
# ----------------------------------------------------------------------
@pytest.fixture()
def serving_stack(fresh_cache):
    from repro.serve.server import CacheMindServer
    from repro.serve.service import CacheMindService

    service = CacheMindService(session=CacheMind(simulation_cache=fresh_cache,
                                                 **SESSION_KWARGS))
    server = CacheMindServer(service).start()
    yield service, server
    server.close()
    service.close()


def test_remote_experiment_matches_in_process(serving_stack):
    from repro.serve.client import RemoteClient

    service, server = serving_stack
    spec = small_spec()
    host, port = server.address
    with RemoteClient(host, port) as client:
        remote = client.experiment(spec)
    local = CacheMind(simulation_cache=SimulationCache(),
                      **SESSION_KWARGS).run_experiment(spec)
    assert remote.columns == local.columns
    assert remote.fingerprint == local.fingerprint
    stats = service.stats()["experiments"]
    assert stats["runs"] == 1
    assert stats["errors"] == 0
    assert stats["in_progress"] == 0
    assert stats["cells_done"] == stats["cells_total"] == len(local)
    assert stats["last"]["fingerprint"] == spec.fingerprint()


def test_remote_experiment_rejects_malformed_spec(serving_stack):
    _service, server = serving_stack
    reply = server.dispatch_line(
        json.dumps({"op": "experiment", "spec": "not-a-dict"}).encode())
    assert reply["ok"] is False
    assert "spec" in reply["error"]
    reply = server.dispatch_line(
        json.dumps({"op": "experiment",
                    "spec": {"workloads": ["astar"], "policies": ["lru"],
                             "configs": ["no-such-config"]}}).encode())
    assert reply["ok"] is False


def test_service_run_experiment_counts_errors(fresh_cache):
    from repro.serve.service import CacheMindService

    service = CacheMindService(session=CacheMind(simulation_cache=fresh_cache,
                                                 **SESSION_KWARGS))
    with pytest.raises(UnknownNameError):
        service.run_experiment(small_spec(policies=["nope"]))
    stats = service.stats()["experiments"]
    assert stats["errors"] == 1
    assert stats["in_progress"] == 0
    service.close()


# ----------------------------------------------------------------------
# CLI: experiment run / report
# ----------------------------------------------------------------------
EXPERIMENT_ARGS = ["experiment", "run", "--workloads", "astar,lbm",
                   "--policies", "lru,belady", "--configs", "tiny",
                   "--accesses", "400"]


def test_cli_experiment_run_prints_table(capsys):
    from repro.cli import main

    assert main([*EXPERIMENT_ARGS, "--baseline", "lru"]) == 0
    out = capsys.readouterr().out
    assert "unique jobs" in out
    assert "miss_rate per (workload, policy)" in out
    assert "delta vs baseline 'lru'" in out


def test_cli_experiment_run_json_roundtrips(capsys):
    from repro.cli import main

    assert main([*EXPERIMENT_ARGS, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    result = ExperimentResult.from_dict(payload)
    assert len(result) == 4
    assert result.counters["unique_jobs"] == 4


def test_cli_experiment_cells_match_session(capsys):
    from repro.cli import main

    assert main([*EXPERIMENT_ARGS, "--json"]) == 0
    cli_result = ExperimentResult.from_dict(
        json.loads(capsys.readouterr().out))
    session_result = CacheMind(
        simulation_cache=SimulationCache(), **SESSION_KWARGS
    ).run_experiment(cli_result.spec)
    assert cli_result.columns == session_result.columns


def test_cli_experiment_warm_rerun_and_report(tmp_path, capsys):
    from repro.cli import main

    store_dir = str(tmp_path / "store")
    output = str(tmp_path / "result.json")
    args = [*EXPERIMENT_ARGS, "--store-dir", store_dir, "--output", output]
    assert main(args) == 0
    capsys.readouterr()
    # a cold run with --expect-warm must fail loudly...
    assert main([*EXPERIMENT_ARGS, "--store-dir", str(tmp_path / "other"),
                 "--expect-warm"]) == 1
    assert "expected a warm run" in capsys.readouterr().err
    # ...while the second run over the populated store is warm
    assert main([*args, "--expect-warm"]) == 0
    assert "0 simulated" in capsys.readouterr().out
    # report: list the store, then render by fingerprint prefix and file
    assert main(["experiment", "report", "--store-dir", store_dir]) == 0
    listing = capsys.readouterr().out
    assert "stored experiment(s)" in listing
    fingerprint = listing.split("\n")[1].split()[0]
    assert main(["experiment", "report", "--store-dir", store_dir,
                 "--fingerprint", fingerprint[:8]]) == 0
    assert "best policy per cell" in capsys.readouterr().out
    assert main(["experiment", "report", output,
                 "--metric", "miss_rate"]) == 0
    assert "miss_rate per (workload, policy)" in capsys.readouterr().out


def test_cli_experiment_report_requires_one_source(capsys):
    from repro.cli import main

    assert main(["experiment", "report"]) == 2
    assert "store-dir" in capsys.readouterr().err


def test_cli_experiment_report_missing_file_fails_cleanly(capsys, tmp_path):
    from repro.cli import main

    assert main(["experiment", "report",
                 str(tmp_path / "missing.json")]) == 1
    assert "cannot read" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    assert main(["experiment", "report", str(bad)]) == 1
    assert "is not JSON" in capsys.readouterr().err
    wrong_shape = tmp_path / "wrong.json"
    wrong_shape.write_text("[1, 2, 3]")
    assert main(["experiment", "report", str(wrong_shape)]) == 1
    assert "not an ExperimentResult" in capsys.readouterr().err


def test_cli_experiment_remote_rejects_local_only_flags(capsys, tmp_path):
    from repro.cli import main

    code = main([*EXPERIMENT_ARGS, "--remote", "127.0.0.1:1",
                 "--store-dir", str(tmp_path / "store")])
    assert code == 2
    assert "--store-dir" in capsys.readouterr().err
