"""Content-addressed sharded object store and its append-only index.

The contract under test: objects shard by digest prefix and stay immutable;
the index is an *accelerator only* — maintenance answers from it with zero
record opens on a warm store, a missing/torn index never blocks anything,
and ``reindex`` reproduces a compacted index byte-identically from the
object headers alone.  Read-only mounts refuse writes cleanly while staying
race-safe beside concurrent writer processes, and the flat legacy layout
migrates in place with byte-identical warm reads.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.core.pipeline import CacheMind, SimulationCache
from repro.errors import StoreReadOnlyError, StoreVersionError
from repro.faults import FaultPlan, FaultRule, thread_scope
from repro.sim.config import TINY_CONFIG
from repro.tracedb.objstore import (
    TEMP_MAX_AGE_SECONDS,
    parse_object_name,
    shard_of,
)
from repro.tracedb.store import (
    STORE_SCHEMA_VERSION,
    StoreCorruptionWarning,
    TraceStore,
)
from repro.workloads.generator import generate_trace

SESSION_KWARGS = dict(workloads=["astar"], policies=["lru"],
                      num_accesses=300, config=TINY_CONFIG, seed=0)


def _populate(store, count=6):
    """A small mixed corpus: entries, results, an experiment, a trace."""
    for i in range(count):
        store.save("entry", ("k", i), {"i": i})
        store.save("result", ("r", i), [i, i + 1])
    store.save_experiment("cafe0123", {"cells": [1, 2, 3]})
    store.save_trace(generate_trace("astar", 200, seed=1), source="unit")


def _index_path(root):
    return os.path.join(str(root), "index", "log.jsonl")


def _object_paths(root):
    objects = os.path.join(str(root), "objects")
    for shard in sorted(os.listdir(objects)):
        for name in sorted(os.listdir(os.path.join(objects, shard))):
            if name.endswith(".pkl"):
                yield shard, os.path.join(objects, shard, name)


# ----------------------------------------------------------------------
# sharded layout
# ----------------------------------------------------------------------
def test_objects_land_in_their_digest_shard(tmp_path):
    store = TraceStore(str(tmp_path))
    _populate(store)
    seen = 0
    for shard, path in _object_paths(tmp_path):
        parsed = parse_object_name(os.path.basename(path))
        assert parsed is not None
        assert shard == shard_of(parsed[1])
        seen += 1
    assert seen == len(store) == 14
    # Nothing at the top level but the manifest and the index/objects dirs.
    top = set(os.listdir(str(tmp_path)))
    assert top == {"manifest.json", "objects", "index"}
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest["layout"] == "sharded"
    assert manifest["schema"] == STORE_SCHEMA_VERSION


def test_round_trip_and_per_shard_info(tmp_path):
    store = TraceStore(str(tmp_path))
    _populate(store)
    assert store.load("entry", ("k", 0)) == {"i": 0}
    info = store.info()
    assert info["layout"] == "sharded"
    assert info["entries"] == 6 and info["results"] == 6
    assert info["experiments"] == 1 and info["traces"] == 1
    assert sum(info["shards"].values()) == info["records"] == 14
    assert sum(sum(per.values()) for per in info["by_kind_shard"].values()) \
        == 14
    assert info["index"]["entries"] == 14
    assert info["index"]["compaction_lag"] == 0


# ----------------------------------------------------------------------
# the index is an accelerator: zero record opens when warm
# ----------------------------------------------------------------------
def test_warm_maintenance_opens_zero_record_files(tmp_path):
    _populate(TraceStore(str(tmp_path)))
    # A fresh handle models a new maintenance process: its only warmth is
    # the on-disk index.
    store = TraceStore(str(tmp_path))
    store.info()
    assert store.experiment_fingerprints() == ["cafe0123"]
    assert len(store.trace_manifest()) == 1
    assert list(store.iter_records())
    assert store.gc() == {"corrupt": [], "schema": [], "pruned": [],
                          "temp": []}
    assert store.record_opens == 0, \
        "index-served maintenance must not open record files"


def test_missing_index_falls_back_to_header_scan(tmp_path):
    _populate(TraceStore(str(tmp_path)))
    os.unlink(_index_path(tmp_path))
    store = TraceStore(str(tmp_path))
    # Everything still answers (reads never depend on the index)...
    assert store.load("entry", ("k", 1)) == {"i": 1}
    assert store.experiment_fingerprints() == ["cafe0123"]
    info = store.info()
    assert info["records"] == 14 and info["unreadable"] == 0
    assert not info["index"]["present"]
    # ...the fallback just pays header reads for the uncovered objects.
    assert store.record_opens > 0


def test_torn_index_tail_is_skipped_not_fatal(tmp_path):
    store = TraceStore(str(tmp_path))
    _populate(store, count=3)
    with open(_index_path(tmp_path), "rb") as handle:
        whole = handle.read()
    # Tear the final append mid-line (no trailing newline).
    with open(_index_path(tmp_path), "wb") as handle:
        handle.write(whole[:-10])
    fresh = TraceStore(str(tmp_path))
    assert fresh.load("trace", tuple()) is None  # reads still fine
    info = fresh.info()
    assert info["records"] == 8 and info["unreadable"] == 0
    assert info["index"]["invalid_lines"] == 1
    # Exactly one object lost its line; the view healed it via one header
    # read, and compaction lag reflects the torn line.
    assert info["index"]["unindexed_objects"] == 1
    assert info["index"]["compaction_lag"] >= 1


# ----------------------------------------------------------------------
# byte-identical reindex
# ----------------------------------------------------------------------
def test_reindex_reproduces_the_index_byte_identically(tmp_path):
    store = TraceStore(str(tmp_path))
    _populate(store)
    # Re-save a record (duplicate line) so compaction has real work.
    store.save("entry", ("k", 0), {"i": 0})
    store.compact_index()
    canonical = store.index_bytes()
    assert canonical
    os.unlink(_index_path(tmp_path))
    stats = TraceStore(str(tmp_path)).reindex()
    assert stats == {"indexed": 14, "unreadable": 0}
    assert TraceStore(str(tmp_path)).index_bytes() == canonical, \
        "reindex from headers must be byte-identical to the compacted log"


def test_compaction_drops_duplicates_and_stale_entries(tmp_path):
    store = TraceStore(str(tmp_path))
    _populate(store, count=3)
    store.save("entry", ("k", 0), {"i": 0})  # duplicate line
    name = "entry-" + sorted(
        n.split("-")[1] for n, _ in
        ((os.path.basename(p), p) for _, p in _object_paths(tmp_path))
        if n.startswith("entry-"))[0]
    # Delete one object behind the index's back: its entry goes stale.
    store._objects.remove_object(name)
    stats = store.compact_index()
    assert stats["dropped_duplicates"] == 1
    assert stats["dropped_stale"] == 1
    # After compaction the log equals a fresh reindex.
    compacted = store.index_bytes()
    store.reindex()
    assert store.index_bytes() == compacted


def test_torn_index_append_fault_degrades_to_compaction_lag(tmp_path):
    store = TraceStore(str(tmp_path))
    plan = FaultPlan([FaultRule("index.append", action="truncate", nth=1)])
    with thread_scope(plan):
        store.save("entry", ("k",), {"x": 1})
    assert plan.triggered == 1
    # The record itself committed and is readable...
    assert store.load("entry", ("k",)) == {"x": 1}
    # ...the torn line is just lag, healed by reindex.
    fresh = TraceStore(str(tmp_path))
    health = fresh.info()["index"]
    assert health["invalid_lines"] == 1
    assert health["unindexed_objects"] == 1
    fresh.reindex()
    assert TraceStore(str(tmp_path)).info()["index"]["unindexed_objects"] == 0


# ----------------------------------------------------------------------
# verify heals the index; gc age-gates temp files
# ----------------------------------------------------------------------
def test_verify_repair_heals_stale_and_unindexed_entries(tmp_path):
    store = TraceStore(str(tmp_path))
    _populate(store, count=3)
    # One stale entry (object removed behind the index's back)...
    victim = sorted(name for name, _ in store.iter_records())[0]
    store._objects.remove_object(victim)
    # ...and one unindexed object (index line torn off).
    with open(_index_path(tmp_path), "rb") as handle:
        lines = handle.read().splitlines(keepends=True)
    with open(_index_path(tmp_path), "wb") as handle:
        handle.writelines(lines[:-1])
    report = TraceStore(str(tmp_path)).verify()
    assert not report["clean"]
    assert report["index"]["stale"] == [victim]
    assert len(report["index"]["unindexed"]) == 1

    repaired = TraceStore(str(tmp_path)).verify(repair=True)
    assert repaired["repaired"] and repaired["index"]["healed"]
    assert repaired["clean"]
    healed = TraceStore(str(tmp_path))
    assert healed.verify()["clean"]
    # The healed index is exactly what a reindex produces.
    canonical = healed.index_bytes()
    healed.reindex()
    assert healed.index_bytes() == canonical


def test_verify_can_be_scoped_to_shards(tmp_path):
    store = TraceStore(str(tmp_path))
    _populate(store)
    shards = sorted({shard for shard, _ in _object_paths(tmp_path)})
    scoped = store.verify(shards=shards[:1])
    assert scoped["shards"] == shards[:1]
    assert 0 < scoped["checked"] < 14
    assert scoped["index"] is None  # the index audit is a full-verify job
    total = sum(store.verify(shards=[shard])["checked"] for shard in shards)
    assert total == 14


def test_gc_never_sweeps_a_fresh_temp_file(tmp_path):
    store = TraceStore(str(tmp_path))
    store.save("entry", ("k",), {"x": 1})
    shard = next(iter(_object_paths(tmp_path)))[0]
    fresh_tmp = os.path.join(str(tmp_path), "objects", shard, "inflight.tmp")
    with open(fresh_tmp, "wb") as handle:
        handle.write(b"concurrent writer's in-progress atomic write")
    # Default age gate: the fresh temp survives (it may belong to a live
    # writer mid-os.replace) ...
    assert store.gc()["temp"] == []
    assert os.path.exists(fresh_tmp)
    assert TEMP_MAX_AGE_SECONDS >= 60.0
    # ... verify reports it as fresh, not as damage.
    report = store.verify()
    assert report["temp"] == [] and report["fresh_temp"] == 1
    assert report["clean"]
    # An aged-out temp is swept.
    old = time.time() - (TEMP_MAX_AGE_SECONDS + 5)
    os.utime(fresh_tmp, (old, old))
    removed = store.gc()
    assert removed["temp"] == [os.path.join("objects", shard,
                                            "inflight.tmp")]
    assert not os.path.exists(fresh_tmp)


# ----------------------------------------------------------------------
# read-only mounts
# ----------------------------------------------------------------------
def test_read_only_mount_serves_warm_and_refuses_writes(tmp_path):
    _populate(TraceStore(str(tmp_path)), count=2)
    mount = TraceStore(str(tmp_path), read_only=True)
    assert mount.load("entry", ("k", 0)) == {"i": 0}
    assert mount.experiment_fingerprints() == ["cafe0123"]
    for mutate in (lambda: mount.save("entry", ("z",), {}),
                   mount.gc, mount.clear, mount.reindex,
                   mount.compact_index, mount.migrate,
                   lambda: mount.verify(repair=True)):
        with pytest.raises(StoreReadOnlyError):
            mutate()


def test_read_only_mount_never_creates_or_mutates_anything(tmp_path):
    with pytest.raises(FileNotFoundError):
        TraceStore(str(tmp_path / "nope"), read_only=True)
    store = TraceStore(str(tmp_path))
    store.save("entry", ("k",), {"x": 1})
    # Corrupt the record: a read-only reader warns and misses but must NOT
    # quarantine (that would mutate a store it does not own).
    path = next(iter(_object_paths(tmp_path)))[1]
    with open(path, "wb") as handle:
        handle.write(b"junk")
    mount = TraceStore(str(tmp_path), read_only=True)
    with pytest.warns(StoreCorruptionWarning):
        assert mount.load("entry", ("k",)) is None
    assert os.path.exists(path)
    assert mount.quarantined_files() == []


def test_cachemind_read_only_store_skips_persistence(tmp_path):
    # Writer session populates; a read-only replica answers warm and
    # persists nothing new.
    CacheMind(store_dir=str(tmp_path), **SESSION_KWARGS)._build_database()
    before = TraceStore(str(tmp_path)).index_bytes()
    cache = SimulationCache()
    replica = CacheMind(store_dir=str(tmp_path), store_read_only=True,
                        simulation_cache=cache, **SESSION_KWARGS)
    replica._build_database()
    assert cache.misses == 0 and cache.store_hits > 0
    assert cache.store.read_only
    assert cache.store.saves == 0
    assert TraceStore(str(tmp_path)).index_bytes() == before
    # A replica without a store to mount is a configuration error.
    with pytest.raises(ValueError):
        CacheMind(store_read_only=True, **SESSION_KWARGS)


# ----------------------------------------------------------------------
# flat-layout migration
# ----------------------------------------------------------------------
def _flatten(root):
    """Rewrite a sharded store into the legacy flat layout in place."""
    import shutil

    for _shard, path in list(_object_paths(root)):
        os.replace(path, os.path.join(str(root), os.path.basename(path)))
    shutil.rmtree(os.path.join(str(root), "objects"))
    shutil.rmtree(os.path.join(str(root), "index"))
    manifest_path = os.path.join(str(root), "manifest.json")
    manifest = json.loads(open(manifest_path).read())
    del manifest["layout"]
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle)


def test_flat_store_migrates_transparently_with_identical_bytes(tmp_path):
    store = TraceStore(str(tmp_path))
    _populate(store, count=2)
    payload_before = store.load("entry", ("k", 0))
    record_bytes = {}
    _flatten(tmp_path)
    for name in os.listdir(str(tmp_path)):
        if name.endswith(".pkl"):
            with open(os.path.join(str(tmp_path), name), "rb") as handle:
                record_bytes[name] = handle.read()
    assert TraceStore.detect_layout(str(tmp_path)) == "flat"

    migrated = TraceStore(str(tmp_path))  # auto-detects and re-shards
    assert migrated.migration is not None
    assert migrated.migration["moved"] == len(record_bytes)
    assert TraceStore.detect_layout(str(tmp_path)) == "sharded"
    # Record bytes and payloads are untouched.
    for _shard, path in _object_paths(tmp_path):
        with open(path, "rb") as handle:
            assert handle.read() == record_bytes[os.path.basename(path)]
    assert migrated.load("entry", ("k", 0)) == payload_before
    # The migration-built index equals a fresh reindex.
    canonical = migrated.index_bytes()
    migrated.reindex()
    assert migrated.index_bytes() == canonical


def test_read_only_mount_refuses_flat_layout_with_migrate_hint(tmp_path):
    _populate(TraceStore(str(tmp_path)), count=1)
    _flatten(tmp_path)
    with pytest.raises(StoreVersionError, match="store migrate"):
        TraceStore(str(tmp_path), read_only=True)


def test_store_migrate_cli_round_trip(tmp_path, capsys):
    store_dir = str(tmp_path / "flat")
    base = ["--workloads", "astar", "--policies", "lru",
            "--accesses", "300", "--config", "tiny"]
    assert main(["store", "save", "--dir", store_dir] + base) == 0
    _flatten(store_dir)
    capsys.readouterr()
    assert main(["store", "migrate", "--dir", store_dir]) == 0
    out = capsys.readouterr().out
    assert "moved 2 record(s)" in out and "indexed 2" in out
    # Warm load with zero simulations straight after migration.
    assert main(["store", "load", "--dir", store_dir, "--expect-warm"]
                + base) == 0
    assert "0 simulated" in capsys.readouterr().out


def test_store_reindex_and_compact_cli(tmp_path, capsys):
    _populate(TraceStore(str(tmp_path)), count=2)
    os.unlink(_index_path(tmp_path))
    assert main(["store", "reindex", "--dir", str(tmp_path)]) == 0
    assert "6 object(s) indexed" in capsys.readouterr().out
    assert main(["store", "compact", "--dir", str(tmp_path)]) == 0
    assert "6 entr(ies) kept" in capsys.readouterr().out
    assert main(["store", "info", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "layout: sharded" in out
    assert "6 entr(ies) covering 6 live object(s)" in out


# ----------------------------------------------------------------------
# multi-process concurrency
# ----------------------------------------------------------------------
_WRITER_SNIPPET = """
import sys
from repro.tracedb.store import TraceStore

root, writer, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = TraceStore(root)
for i in range(count):
    store.save("entry", ("w", writer, i), {"writer": writer, "i": i})
print(store.saves)
"""


def test_concurrent_writer_processes_lose_no_records(tmp_path):
    """Satellite: N writers append lock-free while a reader mounts RO."""
    writers, per_writer = 4, 8
    TraceStore(str(tmp_path))  # stamp the manifest once, racelessly
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    procs = [subprocess.Popen(
        [sys.executable, "-c", _WRITER_SNIPPET,
         str(tmp_path), str(writer), str(per_writer)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        for writer in range(writers)]
    # A read-only reader races the writers: every snapshot it sees must be
    # internally consistent (no torn reads, no crashes, no mutations).
    reader = TraceStore(str(tmp_path), read_only=True)
    snapshots = []
    while any(proc.poll() is None for proc in procs):
        info = reader.info()
        assert info["unreadable"] == 0
        snapshots.append(info["records"])
    for proc in procs:
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err.decode()
        assert out.strip() == str(per_writer).encode()

    # No lost records, every one loadable.
    store = TraceStore(str(tmp_path))
    assert len(store) == writers * per_writer
    for writer in range(writers):
        for i in range(per_writer):
            assert store.load("entry", ("w", writer, i)) \
                == {"writer": writer, "i": i}
    # Snapshots only ever grew (objects are immutable, appends atomic).
    assert snapshots == sorted(snapshots)
    # The live interleaved log compacts to exactly what a reindex builds:
    # concurrent lock-free appends lost nothing.
    health = store.info()["index"]
    assert health["entries"] == writers * per_writer
    assert health["invalid_lines"] == 0
    store.compact_index()
    canonical = store.index_bytes()
    os.unlink(_index_path(tmp_path))
    assert store.reindex()["indexed"] == writers * per_writer
    assert store.index_bytes() == canonical
