"""Shared fixtures: a small, fast CacheMind session over the tiny config."""

import pytest

from repro import CacheMind, TINY_CONFIG
from repro.core.pipeline import SimulationCache

#: session parameters shared by the pipeline/CLI tests (small for speed).
SESSION_KWARGS = dict(
    workloads=["astar", "lbm"],
    policies=["lru", "belady"],
    num_accesses=500,
    config=TINY_CONFIG,
    seed=0,
)


@pytest.fixture()
def fresh_cache():
    """An isolated simulation memoiser (not the process-wide singleton)."""
    return SimulationCache()


@pytest.fixture()
def session(fresh_cache):
    """A small CacheMind session with an isolated memoiser."""
    return CacheMind(simulation_cache=fresh_cache, **SESSION_KWARGS)
