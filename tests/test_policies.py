"""Policy registry round-trips."""

import pytest

from repro.policies.base import ReplacementPolicy, available_policies, get_policy


def test_available_policies_cover_the_paper_set():
    names = available_policies()
    for expected in ("lru", "fifo", "belady", "mlp", "parrot", "mockingjay",
                     "hawkeye", "ship", "srrip", "brrip", "drrip", "dip"):
        assert expected in names


@pytest.mark.parametrize("name", available_policies())
def test_registry_round_trip(name):
    policy = get_policy(name)
    assert isinstance(policy, ReplacementPolicy)
    assert policy.name == name
    assert policy.describe()


def test_unknown_policy_raises():
    with pytest.raises(KeyError):
        get_policy("not-a-policy")
