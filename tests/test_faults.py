"""Chaos suite: deterministic fault injection and end-to-end resilience.

Every test here drives a *real* production path (store, parallel builds,
client/server) under a seeded :class:`~repro.faults.FaultPlan` and asserts
the resilience contract: either the byte-identical answer a fault-free run
produces, or a clean structured error — never a hang, a corrupted result,
or a dead connection.  The same seed always injects the same faults, so
every assertion in this file is reproducible.
"""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.core.pipeline import CacheMind, SimulationCache
from repro.errors import UnknownNameError
from repro.faults import (
    ENV_PLAN_VAR,
    FAULT_POINTS,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    env_scope,
    fault_point,
    process_scope,
    thread_scope,
)
from repro.serve.client import (
    DeadlineExceeded,
    RemoteClient,
    ServerOverloadedError,
    ServerShuttingDownError,
)
from repro.serve.server import CacheMindServer
from repro.serve.service import CacheMindService
from repro.sim.config import TINY_CONFIG
from repro.sim.parallel import ParallelSimulator, SimulationJob
from repro.tracedb.store import StoreCorruptionWarning, TraceStore
from repro.workloads.generator import generate_trace

NUM_ACCESSES = 300
QUESTION = "What is the miss rate of lru on astar?"
SESSION_KWARGS = dict(workloads=["astar"], policies=["lru"],
                      num_accesses=NUM_ACCESSES, config=TINY_CONFIG, seed=0)


def _session(store_dir=None):
    store = TraceStore(str(store_dir)) if store_dir is not None else None
    cache = SimulationCache(store=store)
    return CacheMind(simulation_cache=cache, **SESSION_KWARGS), cache


def _table_bytes(entry):
    return json.dumps(list(entry.data_frame.iter_rows()), sort_keys=True,
                      default=str).encode("utf-8")


def _entry_tables(entries):
    return [_table_bytes(entry) for entry in entries]


# ----------------------------------------------------------------------
# FaultRule / FaultPlan unit behaviour
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    dict(point="store.explode", nth=1),            # unknown point
    dict(point="store.read", action="melt", nth=1),  # unknown action
    dict(point="store.read", error="cosmic", nth=1),  # unknown error kind
    dict(point="store.read", scope="galaxy", nth=1),  # unknown scope
    dict(point="store.read"),                      # neither trigger
    dict(point="store.read", nth=1, probability=0.5),  # both triggers
    dict(point="store.read", nth=0),               # nth is 1-based
    dict(point="store.read", probability=1.5),     # probability out of range
    dict(point="store.read", nth=1, times=0),      # times must be >= 1
])
def test_rule_validation_rejects_bad_fields(kwargs):
    with pytest.raises(ValueError):
        FaultRule(**kwargs)


def test_rule_dict_round_trip_is_sparse_and_lossless():
    rule = FaultRule("store.write", action="truncate", nth=2)
    encoded = rule.to_dict()
    # Defaults are omitted so env-var plans stay short.
    assert encoded == {"point": "store.write", "action": "truncate", "nth": 2}
    assert FaultRule.from_dict(encoded) == rule
    with pytest.raises(ValueError):
        FaultRule.from_dict({"point": "store.read", "nth": 1, "sneaky": True})


def test_plan_json_round_trip_is_lossless():
    plan = FaultPlan([
        FaultRule("socket.recv", error="connection", nth=3, times=2),
        FaultRule("worker.simulate", action="exit", scope="worker",
                  probability=0.25, times=None, message="boom"),
    ], seed=17)
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.seed == plan.seed
    assert clone.rules == plan.rules


def test_nth_rule_fires_on_exactly_that_call():
    plan = FaultPlan([FaultRule("store.read", nth=3)])
    with thread_scope(plan):
        fault_point("store.read")
        fault_point("store.read")
        with pytest.raises(InjectedFault):
            fault_point("store.read")
        fault_point("store.read")  # times=1 exhausted the rule
    assert plan.triggered == 1
    assert plan.stats()["calls"]["store.read"] == 4


def test_probabilistic_rule_is_deterministic_per_seed():
    def fire_pattern(seed):
        plan = FaultPlan([FaultRule("backend.generate", probability=0.3,
                                    times=None)], seed=seed)
        pattern = []
        with thread_scope(plan):
            for _ in range(200):
                try:
                    fault_point("backend.generate")
                    pattern.append(False)
                except InjectedFault:
                    pattern.append(True)
        return pattern

    assert fire_pattern(7) == fire_pattern(7)
    assert fire_pattern(7) != fire_pattern(8)


def test_times_caps_total_firings():
    plan = FaultPlan([FaultRule("store.read", probability=1.0, times=2)])
    with thread_scope(plan):
        for _ in range(2):
            with pytest.raises(InjectedFault):
                fault_point("store.read")
        fault_point("store.read")
    assert plan.triggered == 2


def test_error_kinds_map_to_standard_exceptions():
    for kind, expected in (("injected", InjectedFault), ("os", OSError),
                           ("connection", ConnectionResetError),
                           ("timeout", TimeoutError)):
        plan = FaultPlan([FaultRule("store.read", error=kind, nth=1)])
        with thread_scope(plan):
            with pytest.raises(expected):
                fault_point("store.read")


def test_truncate_and_corrupt_mangle_byte_payloads():
    data = bytes(range(16))
    plan = FaultPlan([FaultRule("store.write", action="truncate", nth=1),
                      FaultRule("store.write", action="corrupt", nth=2)])
    with thread_scope(plan):
        assert fault_point("store.write", data) == data[:8]
        mangled = fault_point("store.write", data)
        assert len(mangled) == len(data) and mangled != data
        assert fault_point("store.write", data) == data  # rules exhausted


def test_fault_point_is_noop_without_an_active_plan():
    payload = b"untouched"
    for name in FAULT_POINTS:
        assert fault_point(name, payload) is payload
    assert active_plan() is None


def test_thread_scope_is_confined_to_the_activating_thread():
    plan = FaultPlan([FaultRule("store.read", probability=1.0, times=None)])
    seen_elsewhere = []

    def other_thread():
        seen_elsewhere.append(active_plan())
        seen_elsewhere.append(fault_point("store.read", b"ok"))

    with thread_scope(plan):
        worker = threading.Thread(target=other_thread)
        worker.start()
        worker.join()
        with pytest.raises(InjectedFault):
            fault_point("store.read")
    assert seen_elsewhere == [None, b"ok"]


def test_process_scope_is_visible_to_all_threads_and_shadowed_by_thread():
    process_plan = FaultPlan([FaultRule("store.read", probability=1.0,
                                        times=None)])
    thread_plan = FaultPlan([])
    results = []

    def other_thread():
        try:
            fault_point("store.read")
            results.append("clean")
        except InjectedFault:
            results.append("fired")

    with process_scope(process_plan):
        worker = threading.Thread(target=other_thread)
        worker.start()
        worker.join()
        with thread_scope(thread_plan):
            # The thread-local (empty) plan shadows the process plan here.
            assert active_plan() is thread_plan
            fault_point("store.read")
        assert active_plan() is process_plan
    assert results == ["fired"]
    assert active_plan() is None


def test_env_scope_exports_plan_without_activating_the_exporter():
    plan = FaultPlan([FaultRule("store.read", nth=1)], seed=5)
    assert ENV_PLAN_VAR not in os.environ
    with env_scope(plan):
        assert FaultPlan.from_json(os.environ[ENV_PLAN_VAR]).rules == plan.rules
        # The exporting process itself stays clean: the plan is meant for
        # children only, so the parent's serial fallback cannot be killed.
        assert active_plan() is None
        assert fault_point("store.read", b"safe") == b"safe"
    assert ENV_PLAN_VAR not in os.environ


def test_env_plan_auto_activates_in_a_child_process(tmp_path):
    code = (
        "from repro.faults import InjectedFault, fault_point\n"
        "try:\n"
        "    fault_point('store.read')\n"
        "    print('CLEAN')\n"
        "except InjectedFault:\n"
        "    print('FIRED')\n"
    )
    env = dict(os.environ)
    env[ENV_PLAN_VAR] = FaultPlan([FaultRule("store.read", nth=1)]).to_json()
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "FIRED"


def test_worker_scoped_rule_never_fires_in_the_parent_process():
    plan = FaultPlan([FaultRule("worker.simulate", action="exit",
                                scope="worker", nth=1)])
    with thread_scope(plan):
        # If the scope guard were broken this would os._exit the test run.
        assert fault_point("worker.simulate", b"alive") == b"alive"
    assert plan.triggered == 0


# ----------------------------------------------------------------------
# store: torn writes, transient reads, full corruption matrix
# ----------------------------------------------------------------------
def test_torn_entry_write_heals_with_zero_resimulation(tmp_path):
    reference_session, _ = _session()
    reference = _table_bytes(reference_session.database.entry(
        "astar_evictions_lru"))
    # Write #1 is the simulation result, #2 the derived entry: tearing the
    # entry leaves the result intact, so a warm start rebuilds the entry
    # from it without re-simulating anything.
    plan = FaultPlan([FaultRule("store.write", action="truncate", nth=2)])
    with thread_scope(plan):
        cold_session, _ = _session(tmp_path)
        _ = cold_session.database
    assert plan.triggered == 1

    with pytest.warns(StoreCorruptionWarning):
        warm_session, warm_cache = _session(tmp_path)
        warm_table = _table_bytes(warm_session.database.entry(
            "astar_evictions_lru"))
    assert warm_table == reference
    assert warm_cache.misses == 0
    store = warm_cache.store
    assert any(name.startswith("entry-") for name in store.quarantined_files())


def test_transient_read_error_is_a_miss_without_quarantine(tmp_path):
    cold_session, _ = _session(tmp_path)
    _ = cold_session.database
    plan = FaultPlan([FaultRule("store.read", error="os", nth=1)])
    with thread_scope(plan):
        with pytest.warns(StoreCorruptionWarning, match="unreadable"):
            warm_session, warm_cache = _session(tmp_path)
            _ = warm_session.database
    # The entry read failed transiently, but the intact result record
    # rebuilt it — and the healthy file must not have been quarantined.
    assert warm_cache.misses == 0
    assert warm_cache.store.quarantined_files() == []


def _damage(path: str, mode: str) -> None:
    with open(path, "rb") as handle:
        data = handle.read()
    if mode == "truncated":
        data = data[: len(data) // 2]
    elif mode == "zero-byte":
        data = b""
    else:  # bit-flipped
        middle = len(data) // 2
        data = data[:middle] + bytes([data[middle] ^ 0xFF]) + data[middle + 1:]
    with open(path, "wb") as handle:
        handle.write(data)


@pytest.mark.parametrize("mode", ["truncated", "zero-byte", "bit-flipped"])
def test_corruption_matrix_across_all_record_kinds(tmp_path, mode):
    """Satellite: every record kind survives every corruption mode."""
    reference_session, _ = _session()
    reference = _table_bytes(reference_session.database.entry(
        "astar_evictions_lru"))

    cold_session, cold_cache = _session(tmp_path)
    _ = cold_session.database
    store = cold_cache.store
    store.save_experiment("cafe0123", {"cells": [1, 2, 3]})
    store.save_trace(generate_trace("astar", NUM_ACCESSES, seed=3),
                     source="unit-test")
    paths = {}  # filename -> actual sharded path
    for shard in os.listdir(os.path.join(store.root, "objects")):
        shard_dir = os.path.join(store.root, "objects", shard)
        for name in os.listdir(shard_dir):
            if name.endswith(".pkl"):
                paths[name] = os.path.join(shard_dir, name)
    records = sorted(paths)
    assert len(records) == 4  # entry, result, experiment, trace
    for name in records:
        _damage(paths[name], mode)
    # Corrupt the manifest too — verify must flag it, repair must re-stamp.
    with open(os.path.join(store.root, "manifest.json"), "w") as handle:
        handle.write("{not json")

    checker = TraceStore(str(tmp_path), strict=False)
    report = checker.verify()
    assert not report["clean"]
    assert sorted(report["corrupt"]) == records
    assert report["ok"] == 0
    assert report["manifest"] == "corrupt"

    repaired = checker.verify(repair=True)
    assert repaired["repaired"]
    assert sorted(repaired["quarantined"]) == records
    assert repaired["manifest"] == "ok"
    assert repaired["clean"]
    assert checker.verify() == {**checker.verify(), "clean": True}

    # A warm start over the repaired (now empty) store re-simulates and
    # produces the byte-identical table.
    warm_session, warm_cache = _session(tmp_path)
    assert _table_bytes(warm_session.database.entry(
        "astar_evictions_lru")) == reference
    assert warm_cache.misses == 1
    assert warm_cache.store.load_experiment("cafe0123") is None
    assert len(warm_cache.store.quarantined_files()) >= len(records)


# ----------------------------------------------------------------------
# parallel builds: crashed workers, broken pools, genuine errors
# ----------------------------------------------------------------------
PARALLEL_JOBS = [SimulationJob(workload=workload, policy=policy,
                               num_accesses=NUM_ACCESSES)
                 for workload in ("astar", "lbm")
                 for policy in ("lru", "belady")]


def _serial_reference():
    simulator = ParallelSimulator(jobs=1, executor="serial",
                                  config=TINY_CONFIG)
    return _entry_tables(simulator.run_entries(PARALLEL_JOBS))


def test_injected_worker_fault_recovers_on_a_fresh_pool():
    reference = _serial_reference()
    plan = FaultPlan([FaultRule("worker.simulate", nth=1)])
    simulator = ParallelSimulator(jobs=2, executor="thread",
                                  config=TINY_CONFIG)
    with process_scope(plan):
        entries = simulator.run_entries(PARALLEL_JOBS)
    assert plan.triggered == 1
    assert _entry_tables(entries) == reference
    assert simulator.last_executor == "thread"
    assert simulator.recovery["pools_replaced"] == 1
    assert simulator.recovery["retried_jobs"] >= 1
    assert simulator.recovery["serial_jobs"] == 0


def test_killed_process_workers_converge_via_serial_fallback():
    reference = _serial_reference()
    # Every fresh pool worker inherits a zero-counter copy of the plan, so
    # its first job dies with os._exit: the original pool breaks, the
    # replacement pool breaks too, and the build converges serially in the
    # parent (where the worker-scoped rule never fires).
    plan = FaultPlan([FaultRule("worker.simulate", action="exit",
                                scope="worker", nth=1)])
    simulator = ParallelSimulator(jobs=2, executor="process",
                                  config=TINY_CONFIG)
    with env_scope(plan):
        entries = simulator.run_entries(PARALLEL_JOBS)
    assert _entry_tables(entries) == reference
    assert simulator.last_executor == "serial"
    assert simulator.recovery["pools_replaced"] == 1
    assert simulator.recovery["serial_jobs"] == len(PARALLEL_JOBS)


def test_genuine_simulation_errors_propagate_not_retried():
    jobs = [SimulationJob(workload="astar", policy="lru",
                          num_accesses=NUM_ACCESSES),
            SimulationJob(workload="astar", policy="no-such-policy",
                          num_accesses=NUM_ACCESSES)]
    simulator = ParallelSimulator(jobs=2, executor="thread",
                                  config=TINY_CONFIG)
    with pytest.raises(UnknownNameError):
        simulator.run_results(jobs)


# ----------------------------------------------------------------------
# client/server: retries, restarts, overload, deadlines, drain
# ----------------------------------------------------------------------
def test_transport_faults_are_retried_invisibly():
    with CacheMindService(**SESSION_KWARGS) as service:
        baseline = service.ask(QUESTION).answer.to_dict()
        with CacheMindServer(service) as server:
            server.start()
            host, port = server.address
            plan = FaultPlan([
                FaultRule("socket.send", error="connection", nth=1),
                FaultRule("socket.recv", error="connection", nth=1),
            ])
            with RemoteClient(host, port, retries=3, backoff_base=0.01,
                              retry_seed=11) as client:
                with thread_scope(plan):
                    response = client.ask(QUESTION)
                assert plan.triggered == 2
                assert client.retries_used == 2
                assert response.answer.to_dict() == baseline


def test_server_restart_is_invisible_to_a_retrying_client():
    with CacheMindService(**SESSION_KWARGS) as service_a:
        server_a = CacheMindServer(service_a)
        server_a.start()
        host, port = server_a.address
        with RemoteClient(host, port, retries=5, backoff_base=0.02,
                          retry_seed=3) as client:
            first = client.ask(QUESTION)
            server_a.close()
            with CacheMindService(**SESSION_KWARGS) as service_b:
                with CacheMindServer(service_b, host=host,
                                     port=port) as server_b:
                    server_b.start()
                    # The client still holds the dead connection; the next
                    # request reconnects and retries without the caller
                    # seeing anything but the identical answer.
                    second = client.ask(QUESTION)
                    assert client.retries_used >= 1
                    assert second.answer.to_dict() == first.answer.to_dict()


def _occupy(server: CacheMindServer, slots: int) -> None:
    with server._state_lock:
        server._in_flight = slots


def test_overloaded_server_sheds_with_a_structured_error():
    with CacheMindService(**SESSION_KWARGS) as service:
        server = CacheMindServer(service, max_in_flight=2)
        try:
            _occupy(server, 2)
            reply = server.dispatch_line(json.dumps(
                {"op": "ask", "question": QUESTION}).encode())
            assert reply["ok"] is False
            assert reply["kind"] == "overloaded"
            assert reply["retry_after_ms"] > 0
            # Liveness and health probes answer even while saturated.
            assert server.dispatch_line(b'{"op": "ping"}')["ok"] is True
            health = server.dispatch_line(b'{"op": "health"}')["result"]
            assert health["status"] == "overloaded"
            assert health["shed"] == 1
            assert health["in_flight"] == 2
        finally:
            _occupy(server, 0)
            server.close()


def test_client_maps_overload_and_drain_to_typed_errors():
    with CacheMindService(**SESSION_KWARGS) as service:
        server = CacheMindServer(service, max_in_flight=1)
        server.start()
        host, port = server.address
        try:
            with RemoteClient(host, port, retries=0) as client:
                _occupy(server, 1)
                with pytest.raises(ServerOverloadedError) as excinfo:
                    client.ask(QUESTION)
                assert excinfo.value.kind == "overloaded"
                _occupy(server, 0)
                assert client.ask(QUESTION).answer.grounded
                assert server.drain(timeout=1.0)
                with pytest.raises(ServerShuttingDownError):
                    client.ask(QUESTION)
                assert client.health()["status"] == "draining"
        finally:
            server.close()


def test_deadlines_reject_instead_of_executing_late():
    with CacheMindService(**SESSION_KWARGS) as service:
        server = CacheMindServer(service)
        server.start()
        host, port = server.address
        try:
            reply = server.dispatch_line(json.dumps(
                {"op": "ask", "question": QUESTION,
                 "deadline_ms": 0}).encode())
            assert reply == {"ok": False, "kind": "deadline",
                             "error": reply["error"]}
            bad = server.dispatch_line(json.dumps(
                {"op": "ask", "question": QUESTION,
                 "deadline_ms": "soon"}).encode())
            assert bad["kind"] == "bad_request"
            with RemoteClient(host, port, retries=3, deadline=0.0) as client:
                with pytest.raises(DeadlineExceeded) as excinfo:
                    client.ask(QUESTION)
                assert excinfo.value.kind == "deadline"
            health = server.dispatch_line(b'{"op": "health"}')["result"]
            assert health["deadline_rejects"] == 1
        finally:
            server.close()


def test_health_op_reports_degradation_snapshot():
    with CacheMindService(**SESSION_KWARGS) as service:
        with CacheMindServer(service, max_in_flight=7) as server:
            server.start()
            host, port = server.address
            with RemoteClient(host, port) as client:
                health = client.health()
    assert health["status"] == "ok"
    assert health["draining"] is False
    assert health["capacity"] == 7
    assert health["in_flight"] == 0
    assert health["shed"] == 0
    assert health["uptime_seconds"] >= 0
    assert "hits" in health["simulation_cache"]


def test_close_warns_when_inflight_requests_outlive_the_drain():
    with CacheMindService(**SESSION_KWARGS) as service:
        server = CacheMindServer(service, drain_timeout=0.05)
        _occupy(server, 1)
        with pytest.warns(RuntimeWarning, match="in-flight"):
            server.close()


def test_backend_fault_becomes_internal_error_not_a_hangup():
    with CacheMindService(**SESSION_KWARGS) as service:
        server = CacheMindServer(service)
        try:
            plan = FaultPlan([FaultRule("backend.generate", nth=1)])
            line = json.dumps({"op": "ask", "question": QUESTION}).encode()
            with thread_scope(plan):
                reply = server.dispatch_line(line)
            assert reply["ok"] is False
            assert reply["kind"] == "internal"
            # The connection contract holds: the very next request on the
            # same dispatch path answers normally.
            retry = server.dispatch_line(line)
            assert retry["ok"] is True
        finally:
            server.close()


# ----------------------------------------------------------------------
# store verify CLI
# ----------------------------------------------------------------------
def test_store_verify_cli_flags_then_repairs(tmp_path, capsys):
    from repro.cli import main

    store = TraceStore(str(tmp_path / "store"))
    path = store.save_result(("astar", "lru", NUM_ACCESSES), {"ipc": 1.0})
    _damage(path, "truncated")
    argv = ["store", "verify", "--dir", str(tmp_path / "store")]

    assert main(argv) == 1
    out = capsys.readouterr()
    assert "corrupt" in out.out
    assert "--repair" in out.err

    assert main(argv + ["--repair"]) == 0
    assert "store is clean" in capsys.readouterr().out
    assert main(argv) == 0
