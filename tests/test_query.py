"""QueryParser: category classification, extraction and the wants_sets fix."""

import pytest

from repro.core import query as q
from repro.core.query import QueryParser

PARSER = QueryParser(known_workloads=["astar", "lbm", "mcf"],
                     known_policies=["lru", "belady", "mlp", "parrot"])

#: one question per CacheMindBench category (plus helper categories).
CATEGORY_QUESTIONS = [
    (q.HIT_MISS, "Does the access at PC 0x400100 to address 0x7fff12345678 "
                 "result in a cache hit or a miss for astar under lru?"),
    (q.MISS_RATE, "What is the miss rate of lru on astar?"),
    (q.POLICY_COMPARISON, "Which policy has the lowest miss rate on astar?"),
    (q.COUNT, "How many times does PC 0x400100 miss in astar?"),
    (q.ARITHMETIC, "What is the average reuse distance for PC 0x400100 "
                   "in astar?"),
    (q.CONCEPT, "How does increasing associativity affect conflict misses?"),
    (q.CODE_GENERATION, "Write code to compute the miss rate for lbm."),
    (q.POLICY_ANALYSIS, "Why does belady outperform lru at PC 0x400100?"),
    (q.WORKLOAD_ANALYSIS, "Which workload has the highest miss rate "
                          "under lru?"),
    (q.SEMANTIC_ANALYSIS, "Why does PC 0x400100 miss so often? Examine the "
                          "assembly context."),
    (q.SET_ANALYSIS, "Which cache sets are hot and cold in astar under lru?"),
    (q.PC_LIST, "List all unique PCs in the astar trace."),
]


@pytest.mark.parametrize("expected,question", CATEGORY_QUESTIONS)
def test_category_classification(expected, question):
    assert PARSER.parse(question).question_type == expected


def test_hex_extraction_classifies_pcs_and_addresses():
    intent = PARSER.parse(
        "Does PC 0x400100 access address 0x7fff12345678 in astar?")
    assert intent.pcs == ["0x400100"]
    assert intent.addresses == ["0x7fff12345678"]


def test_workload_and_policy_extraction():
    intent = PARSER.parse(
        "Compare the policies lru and belady on the mcf workload.")
    assert intent.workloads == ["mcf"]
    assert set(intent.policies) == {"lru", "belady"}


def test_policy_alias_resolution():
    intent = PARSER.parse("Is Belady's optimal better than least recently "
                          "used on astar?")
    assert "belady" in intent.policies
    assert "lru" in intent.policies


# ----------------------------------------------------------------------
# the wants_sets operator-precedence fix
# ----------------------------------------------------------------------
def test_superlative_word_boundaries():
    assert PARSER.parse(
        "Which policy gives the best hit rate on astar over at least "
        "10000 accesses?").comparison == "best"
    assert PARSER.parse(
        "Is the miss rate almost unchanged across policies on astar?"
    ).comparison is None
    assert PARSER.parse(
        "Which policy has the lowest miss rate on astar?").comparison == "lowest"
    assert PARSER.parse(
        "Which policy performs worst on astar?").comparison == "worst"


def test_resolve_comparison_truth_table():
    from repro.core.query import resolve_comparison

    # (comparison, wants_hit_rate) -> winner has the lowest miss rate?
    assert resolve_comparison(None, False) is True
    assert resolve_comparison("best", True) is True
    assert resolve_comparison("worst", False) is False
    assert resolve_comparison("lowest", False) is True    # lowest miss rate
    assert resolve_comparison("highest", False) is False  # highest miss rate
    assert resolve_comparison("lowest", True) is False    # lowest hit rate
    assert resolve_comparison("highest", True) is True    # highest hit rate


def test_wants_sets_for_cache_set_questions():
    assert PARSER.parse("Which cache sets are hot in astar?").wants_sets
    assert PARSER.parse("Show the hot and cold sets of lbm.").wants_sets
    assert PARSER.parse("What happens in cache set 12?").wants_sets


def test_wants_sets_not_triggered_by_substrings():
    # Pre-fix, `"set" in q and "cache set" in q or "sets" in q` made any
    # question containing the substring "sets" (offsets, onsets, ...) match.
    assert not PARSER.parse("What offsets are used by PC 0x400100?").wants_sets
    assert not PARSER.parse("How do the onsets of thrashing look?").wants_sets
    assert not PARSER.parse("What is the miss rate of lru on astar?").wants_sets
