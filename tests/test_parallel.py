"""ParallelSimulator and parallel database builds.

Serial and parallel builds must be byte-identical: deterministic traces and
policies make every (workload, policy) simulation independent of where it
runs.
"""

import json

import pytest

from repro.core.pipeline import CacheMind, SimulationCache
from repro.sim.config import TINY_CONFIG
from repro.sim.engine import SimulationEngine
from repro.sim.parallel import ParallelSimulator, SimulationJob, default_jobs
from repro.tracedb.database import TraceDatabase, build_database
from repro.workloads.generator import generate_trace

WORKLOADS = ("astar", "lbm")
POLICIES = ("lru", "belady")
NUM_ACCESSES = 800


def _table_bytes(entry):
    """Canonical byte representation of one entry's data frame."""
    return json.dumps(list(entry.data_frame.iter_rows()), sort_keys=True,
                      default=str).encode("utf-8")


def _build(jobs, executor="auto"):
    return build_database(workloads=WORKLOADS, policies=POLICIES,
                          num_accesses=NUM_ACCESSES, config=TINY_CONFIG,
                          jobs=jobs, executor=executor)


@pytest.mark.parametrize("executor", ["process", "thread"])
def test_parallel_build_identical_to_serial(executor):
    serial = _build(jobs=1)
    parallel = _build(jobs=2, executor=executor)
    assert serial.keys() == parallel.keys()
    for key in serial.keys():
        serial_entry, parallel_entry = serial.entry(key), parallel.entry(key)
        assert _table_bytes(serial_entry) == _table_bytes(parallel_entry)
        assert serial_entry.metadata == parallel_entry.metadata
        assert serial_entry.description == parallel_entry.description
        assert serial_entry.statistics == parallel_entry.statistics


def test_tracedatabase_build_classmethod():
    database = TraceDatabase.build(workloads=("astar",), policies=("lru",),
                                   num_accesses=NUM_ACCESSES,
                                   config=TINY_CONFIG, jobs=2)
    assert "astar_evictions_lru" in database
    assert len(database) == 1


def test_parallel_build_with_supplied_traces():
    trace = generate_trace("astar", NUM_ACCESSES, seed=3)
    serial = build_database(workloads=("astar",), policies=POLICIES,
                            num_accesses=NUM_ACCESSES, config=TINY_CONFIG,
                            traces={"astar": trace}, jobs=1)
    parallel = build_database(workloads=("astar",), policies=POLICIES,
                              num_accesses=NUM_ACCESSES, config=TINY_CONFIG,
                              traces={"astar": trace}, jobs=2)
    for key in serial.keys():
        assert _table_bytes(serial.entry(key)) == _table_bytes(parallel.entry(key))


def test_run_results_order_and_serial_fallback():
    jobs = [SimulationJob(workload=workload, policy=policy,
                          num_accesses=NUM_ACCESSES)
            for workload in WORKLOADS for policy in POLICIES]
    simulator = ParallelSimulator(jobs=4, executor="serial",
                                  config=TINY_CONFIG, detail="stats")
    results = simulator.run_results(jobs)
    assert simulator.last_executor == "serial"
    assert [(result.workload, result.policy_name) for result in results] == \
           [(job.workload, job.policy) for job in jobs]
    assert all(result.llc_stats.accesses == NUM_ACCESSES for result in results)


def test_parallel_simulator_rejects_bad_executor():
    with pytest.raises(ValueError):
        ParallelSimulator(executor="gpu")
    assert default_jobs() >= 1


def test_cachemind_parallel_build_matches_serial():
    kwargs = dict(workloads=list(WORKLOADS), policies=list(POLICIES),
                  num_accesses=NUM_ACCESSES, config=TINY_CONFIG, seed=0)
    serial_session = CacheMind(simulation_cache=SimulationCache(), **kwargs)
    parallel_session = CacheMind(simulation_cache=SimulationCache(), jobs=2,
                                 **kwargs)
    assert serial_session.compare_policies() == parallel_session.compare_policies()
    for key in serial_session.database.keys():
        assert (_table_bytes(serial_session.database.entry(key))
                == _table_bytes(parallel_session.database.entry(key)))


def test_parallel_results_flow_back_into_simulation_cache():
    cache = SimulationCache()
    kwargs = dict(workloads=["astar"], policies=list(POLICIES),
                  num_accesses=NUM_ACCESSES, config=TINY_CONFIG, seed=0)
    first = CacheMind(simulation_cache=cache, jobs=2, **kwargs)
    _ = first.database
    misses_after_first = cache.misses
    assert misses_after_first == len(POLICIES)
    # A second parallel session re-simulates nothing: every pair is a
    # memoiser hit, so parallelism and memoisation compose.
    second = CacheMind(simulation_cache=cache, jobs=2, **kwargs)
    _ = second.database
    assert cache.misses == misses_after_first
    assert cache.hits >= len(POLICIES)
    # The memoised entries also satisfy plain get_or_run simulations.
    engine = SimulationEngine(config=TINY_CONFIG)
    trace, _description = cache.get_trace("astar", NUM_ACCESSES, 0)
    hits_before = cache.hits
    cache.get_or_run(engine, trace, "lru")
    assert cache.hits == hits_before + 1
