"""Minimal, stdlib-only PEP 517 build backend for this repository.

The execution environment for this reproduction has no network access and no
``wheel`` package, so the standard setuptools editable-wheel path cannot run.
This backend implements just enough of PEP 517/660 for ``pip install -e .``
and ``pip install .`` to work offline:

* ``build_editable`` produces a wheel containing a ``.pth`` file that points
  at the repository's ``src`` directory;
* ``build_wheel`` produces a regular wheel by copying ``src/repro`` into it;
* build requirements are empty, so pip's isolated build environment needs to
  download nothing.

It is intentionally tiny and has no dependencies beyond the standard library.
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile

PACKAGE_NAME = "repro"
VERSION = "1.0.0"
REQUIRES = ("numpy",)
#: console scripts installed with the wheel (mirrors [project.scripts]).
CONSOLE_SCRIPTS = {"cachemind": "repro.cli:main"}

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")


def _dist_info_name() -> str:
    return f"{PACKAGE_NAME}-{VERSION}.dist-info"


def _metadata_text() -> str:
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {PACKAGE_NAME}",
        f"Version: {VERSION}",
        "Summary: CacheMind reproduction: natural-language, trace-grounded "
        "reasoning for cache replacement",
        "Requires-Python: >=3.9",
    ]
    lines.extend(f"Requires-Dist: {req}" for req in REQUIRES)
    return "\n".join(lines) + "\n"


def _wheel_text() -> str:
    return (
        "Wheel-Version: 1.0\n"
        "Generator: repro_build_backend (1.0)\n"
        "Root-Is-Purelib: true\n"
        "Tag: py3-none-any\n"
    )


def _record_entry(name: str, data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    encoded = base64.urlsafe_b64encode(digest).decode("ascii").rstrip("=")
    return f"{name},sha256={encoded},{len(data)}"


def _entry_points_text() -> str:
    lines = ["[console_scripts]"]
    lines.extend(f"{name} = {target}"
                 for name, target in sorted(CONSOLE_SCRIPTS.items()))
    return "\n".join(lines) + "\n"


def _write_wheel(wheel_directory: str, contents: dict) -> str:
    """Write a wheel with the given {archive name: bytes} contents."""
    dist_info = _dist_info_name()
    contents = dict(contents)
    contents[f"{dist_info}/METADATA"] = _metadata_text().encode("utf-8")
    contents[f"{dist_info}/WHEEL"] = _wheel_text().encode("utf-8")
    contents[f"{dist_info}/entry_points.txt"] = _entry_points_text().encode("utf-8")
    record_lines = [_record_entry(name, data) for name, data in contents.items()]
    record_lines.append(f"{dist_info}/RECORD,,")
    record_data = "\n".join(record_lines).encode("utf-8") + b"\n"

    wheel_name = f"{PACKAGE_NAME}-{VERSION}-py3-none-any.whl"
    wheel_path = os.path.join(wheel_directory, wheel_name)
    with zipfile.ZipFile(wheel_path, "w", zipfile.ZIP_DEFLATED) as archive:
        for name, data in contents.items():
            archive.writestr(name, data)
        archive.writestr(f"{dist_info}/RECORD", record_data)
    return wheel_name


# ----------------------------------------------------------------------
# PEP 517 hooks
# ----------------------------------------------------------------------
def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    contents = {}
    package_root = os.path.join(_SRC, PACKAGE_NAME)
    for directory, _subdirs, files in os.walk(package_root):
        for filename in files:
            if filename.endswith((".pyc", ".pyo")):
                continue
            path = os.path.join(directory, filename)
            relative = os.path.relpath(path, _SRC)
            with open(path, "rb") as handle:
                contents[relative.replace(os.sep, "/")] = handle.read()
    return _write_wheel(wheel_directory, contents)


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    pth_data = (_SRC + "\n").encode("utf-8")
    contents = {f"{PACKAGE_NAME}.pth": pth_data}
    return _write_wheel(wheel_directory, contents)


def build_sdist(sdist_directory, config_settings=None):
    raise NotImplementedError("building sdists is not supported offline")
